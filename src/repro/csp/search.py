"""Systematic (backtracking) search over a CSP model.

Depth-first d-way branching exactly as sketched in the paper's Section
III-B: pick an unassigned variable (variable-ordering heuristic), try its
values in heuristic order, propagate constraints to a fixpoint after every
assignment, backtrack on wipe-out.  The search is *complete*: it terminates
with SAT (a solution), UNSAT (exhausted the space) or UNKNOWN (hit the
time/node budget, the paper's "overrun").

Propagation is **incremental and event-driven** (see
:mod:`repro.csp.state` and :mod:`repro.csp.propagators`):

* every domain mutation is a typed event (ASSIGN / BOUNDS / REMOVE) and
  propagators subscribe per variable *and* per event type, so e.g. a
  symmetry chain only wakes when a bound moves;
* before a woken propagator runs, its ``on_event`` hook is fed the exact
  domain delta so owned counters stay current in O(1) per change;
* the propagation queue is priority-tiered — cheap counter-check
  propagators (tier 0) drain before linear passes (tier 1) before
  table filtering (tier 2) — which keeps expensive propagators from
  running against half-settled domains;
* a propagator that reports entailment (:data:`~repro.csp.propagators.
  PROP_ENTAILED`) is deactivated for the rest of the subtree; the
  deactivation lives on the trail, so backtracking reactivates it.
"""

from __future__ import annotations

import random
from collections import deque
from dataclasses import dataclass, field
from enum import Enum

from repro.csp.core import Model, Variable
from repro.csp.heuristics import (
    SearchContext,
    value_order_ascending,
    var_order_min_domain,
)
from repro.csp.propagators import PROP_ENTAILED
from repro.csp.state import EVT_ANY, EVT_ASSIGN, DomainState
from repro.util.timer import Deadline

_EVT_ASSIGN = EVT_ASSIGN  # module-local alias, bound once for the hot loop

__all__ = ["Status", "SearchStats", "SolveOutcome", "Solver", "PROPAGATION_ENGINE"]

#: engine flavor tag, recorded by benchmarks (the pre-refactor engine
#: rescanned every propagator's whole scope on each wake)
PROPAGATION_ENGINE = "incremental-events"

#: number of propagation-queue tiers (Propagator.priority is clamped into it)
_N_TIERS = 3


class Status(Enum):
    """Search outcome."""

    SAT = "sat"
    UNSAT = "unsat"
    UNKNOWN = "unknown"  # budget exhausted before an answer (paper: overrun)


@dataclass
class SearchStats:
    """Counters of one solve run."""

    nodes: int = 0          # value-assignment attempts
    fails: int = 0          # attempts refuted by propagation
    propagations: int = 0   # propagator executions
    events: int = 0         # typed domain-change events dispatched
    entailments: int = 0    # propagators deactivated as entailed
    solutions: int = 0
    max_depth: int = 0
    restarts: int = 0       # geometric restarts taken (restart_nodes mode)
    elapsed: float = 0.0


@dataclass
class SolveOutcome:
    """Result of :meth:`Solver.solve` / :meth:`Solver.solve_all`."""

    status: Status
    solution: dict[Variable, int] | None
    stats: SearchStats
    solutions: list[dict[Variable, int]] = field(default_factory=list)

    @property
    def is_sat(self) -> bool:
        return self.status is Status.SAT

    def value(self, var: Variable) -> int:
        """Value of ``var`` in the (first) solution."""
        if self.solution is None:
            raise ValueError(f"no solution available (status={self.status.name})")
        return self.solution[var]


class _Timeout(Exception):
    """Internal: budget expired inside the propagation fixpoint."""


class Solver:
    """Backtracking solver for a :class:`Model`.

    Parameters
    ----------
    model:
        The CSP to solve.
    var_order:
        Variable-ordering heuristic ``(state, ctx) -> Variable | None``;
        default: min-domain (fail-first).
    value_order:
        Value-ordering heuristic ``(state, var) -> list[int]``;
        default: ascending.
    seed:
        When given, a ``random.Random(seed)`` is exposed to heuristics via
        the search context (random tie-breaking / orders).  The search is
        fully deterministic for a fixed seed.
    restart_nodes:
        When set, the search restarts from the root after this many nodes,
        doubling the cutoff each time (geometric restarts, the classic
        companion of randomized heuristics in solvers like Choco).  The
        procedure stays complete: UNSAT is only reported when a run
        exhausts the space *without* hitting its cutoff, and the growing
        cutoff guarantees some run eventually does.  Pointless without a
        randomized heuristic (every run would explore the same prefix).
    """

    def __init__(
        self,
        model: Model,
        var_order=None,
        value_order=None,
        seed: int | None = None,
        restart_nodes: int | None = None,
    ) -> None:
        self.model = model
        self.var_order = var_order or var_order_min_domain
        self.value_order = value_order or value_order_ascending
        if restart_nodes is not None and restart_nodes < 1:
            raise ValueError(f"restart_nodes must be >= 1, got {restart_nodes}")
        self.restart_nodes = restart_nodes
        self.ctx = SearchContext(
            degrees=model.degrees(),
            rng=None if seed is None else random.Random(seed),
        )
        # Event-driven propagation wiring, built once per Solver: for
        # every variable, a per-event-class jump table.  An event's mask
        # is always one of REMOVE (1), REMOVE|BOUNDS (3) or
        # REMOVE|BOUNDS|ASSIGN (7), so ``self._watchers[idx][mask]`` is
        # the pre-filtered tuple of ``(pid, on_event-or-None, relevance)``
        # subscriptions to wake — no per-entry wake-mask test in the hot
        # dispatch loop.
        self._props = list(model.constraints)
        raw: list[list[tuple]] = [[] for _ in model.variables]
        self._tiers: list[int] = []
        for pid, prop in enumerate(self._props):
            tier = min(_N_TIERS - 1, max(0, getattr(prop, "priority", 1)))
            self._tiers.append(tier)
            handler = getattr(prop, "on_event", None)
            if handler is not None and not getattr(prop, "incremental", True):
                handler = None  # tally-on-wake mode: no delta bookkeeping
            watches = getattr(prop, "watches", None)
            entries = (
                watches() if watches is not None
                else [(v, EVT_ANY, None) for v in prop.vars]
            )
            for entry in entries:
                if len(entry) == 2:  # legacy (var, wake_mask) subscription
                    var, wake_mask = entry
                    relevance = None
                else:
                    var, wake_mask, relevance = entry
                raw[var.index].append((pid, wake_mask, handler, relevance))
        self._watchers: list[tuple] = [
            tuple(
                tuple(
                    (pid, handler, relevance)
                    for pid, wake_mask, handler, relevance in entries
                    if wake_mask & event_class
                )
                if event_class in (1, 3, 7)
                else ()
                for event_class in range(8)
            )
            for entries in raw
        ]
        self._queues: tuple[deque[int], ...] = tuple(
            deque() for _ in range(_N_TIERS)
        )
        self._on_queue = [False] * len(self._props)
        #: per-propagator liveness; entailment flips a slot to False with
        #: a trail record, so backtracking reactivates the propagator
        self._active = [True] * len(self._props)
        self._deadline: Deadline | None = None
        self._prop_budget_check = 0
        self._cutoff_hit = False
        self.stats = SearchStats()

    # -- propagation -----------------------------------------------------------
    def _enqueue_all(self) -> None:
        queues = self._queues
        tiers = self._tiers
        on_queue = self._on_queue
        for pid, is_active in enumerate(self._active):
            if is_active and not on_queue[pid]:
                on_queue[pid] = True
                queues[tiers[pid]].append(pid)

    def _reset_queue(self, state: DomainState) -> None:
        on_queue = self._on_queue
        for queue in self._queues:
            while queue:
                on_queue[queue.popleft()] = False
        # undispatched events belong to the failed/abandoned level; the
        # caller's pop_level truncates them (root-level callers return)

    def _reset_propagators(self, state: DomainState) -> None:
        """Fresh run: reactivate everything, rebuild owned counters."""
        active = self._active
        for pid in range(len(active)):
            active[pid] = True
        self._reset_queue(state)
        for prop in self._props:
            reset = getattr(prop, "reset", None)
            if reset is not None:
                reset(state)

    def _fixpoint(self, state: DomainState) -> bool:
        """Dispatch pending events and run woken propagators to a
        fixpoint; False on conflict.

        Event dispatch (inlined here — this is the hottest loop in the
        repo): for every typed event, each watching propagator whose
        wake mask matches gets its ``on_event`` counter update exactly
        once (queued or not), then is enqueued on its priority tier.
        Deactivated (entailed) propagators are skipped entirely — their
        counters are trail-consistent with the domains at entailment
        time, see propagators.py.  Queue tiers drain cheapest-first: a
        tier-1 propagator only runs when tier 0 is empty, tier 2 when
        0 and 1 are."""
        q0, q1, q2 = self._queues
        props = self._props
        active = self._active
        on_queue = self._on_queue
        watchers = self._watchers
        queues = self._queues
        tiers = self._tiers
        stats = self.stats
        events = state.events
        while True:
            # -- dispatch everything that happened since the last pop
            i = state.dispatched
            n = len(events)
            if i < n:
                stats.events += n - i
                while i < n:
                    idx, old, new, event_mask = events[i]
                    i += 1
                    for pid, handler, relevance in watchers[idx][event_mask]:
                        if not active[pid]:
                            continue
                        if relevance is not None and not (
                            relevance & (old ^ new)
                            or event_mask & _EVT_ASSIGN and relevance & new
                        ):
                            continue  # event can't affect this propagator
                        if (
                            handler is not None
                            and handler(state, idx, old, new) is False
                        ):
                            continue  # counters updated; wake provably a no-op
                        if not on_queue[pid]:
                            on_queue[pid] = True
                            queues[tiers[pid]].append(pid)
                state.dispatched = i
            # -- run the cheapest woken propagator
            if q0:
                pid = q0.popleft()
            elif q1:
                pid = q1.popleft()
            elif q2:
                pid = q2.popleft()
            else:
                return True
            on_queue[pid] = False
            if not active[pid]:
                continue
            stats.propagations += 1
            self._prop_budget_check += 1
            if self._prop_budget_check >= 1024:
                self._prop_budget_check = 0
                if self._deadline is not None and self._deadline.expired():
                    self._reset_queue(state)
                    raise _Timeout
            verdict = props[pid].propagate(state)
            if not verdict:
                self._reset_queue(state)
                return False
            if verdict == PROP_ENTAILED:
                state.save(active, pid)
                active[pid] = False
                stats.entailments += 1

    # -- search -------------------------------------------------------------------
    def solve(
        self,
        time_limit: float | None = None,
        node_limit: int | None = None,
    ) -> SolveOutcome:
        """Find one solution (or prove none exists, or run out of budget)."""
        if self.restart_nodes is None:
            return self._search(time_limit, node_limit, max_solutions=1)
        return self._solve_with_restarts(time_limit, node_limit)

    def _solve_with_restarts(
        self, time_limit: float | None, node_limit: int | None
    ) -> SolveOutcome:
        """Geometric-restart wrapper around :meth:`_search`."""
        deadline = Deadline(time_limit)
        cutoff = self.restart_nodes
        total = SearchStats()
        while True:
            remaining_nodes = None
            if node_limit is not None:
                remaining_nodes = node_limit - total.nodes
                if remaining_nodes <= 0:
                    total.elapsed = deadline.elapsed()
                    return SolveOutcome(Status.UNKNOWN, None, total)
            run_budget = deadline.remaining() if time_limit is not None else None
            self._cutoff_hit = False
            out = self._search(
                run_budget, remaining_nodes, max_solutions=1, node_cutoff=cutoff
            )
            total.nodes += out.stats.nodes
            total.fails += out.stats.fails
            total.propagations += out.stats.propagations
            total.events += out.stats.events
            total.entailments += out.stats.entailments
            total.max_depth = max(total.max_depth, out.stats.max_depth)
            total.solutions = out.stats.solutions
            total.elapsed = deadline.elapsed()
            if out.status is not Status.UNKNOWN or not self._cutoff_hit:
                # decided, or a *real* budget exhaustion — final either way
                out.stats = total
                return out
            total.restarts += 1
            cutoff *= 2  # restart with a doubled cutoff (keeps completeness)

    def solve_all(
        self,
        max_solutions: int | None = None,
        time_limit: float | None = None,
        node_limit: int | None = None,
    ) -> SolveOutcome:
        """Enumerate solutions (up to ``max_solutions``).

        Status is SAT if at least one solution was found *and* either the
        cap was reached or the space was exhausted; UNSAT when exhausted
        with none; UNKNOWN on budget exhaustion (solutions found so far are
        still reported).  Incompatible with restarts (re-running from the
        root would revisit solutions).
        """
        if self.restart_nodes is not None:
            raise ValueError("solve_all cannot be combined with restart_nodes")
        cap = max_solutions if max_solutions is not None else float("inf")
        return self._search(time_limit, node_limit, max_solutions=cap)

    def _search(
        self,
        time_limit: float | None,
        node_limit: int | None,
        max_solutions: float,
        node_cutoff: int | None = None,
    ) -> SolveOutcome:
        self.stats = SearchStats()
        stats = self.stats
        state = DomainState(self.model)
        self._reset_propagators(state)
        self._deadline = deadline = Deadline(time_limit)
        solutions: list[dict[Variable, int]] = []

        def outcome(status: Status) -> SolveOutcome:
            stats.elapsed = deadline.elapsed()
            stats.solutions = len(solutions)
            return SolveOutcome(
                status=status,
                solution=solutions[0] if solutions else None,
                stats=stats,
                solutions=solutions,
            )

        # root propagation
        self._enqueue_all()
        try:
            if not self._fixpoint(state):
                return outcome(Status.UNSAT)
        except _Timeout:
            return outcome(Status.UNKNOWN)

        first = self.var_order(state, self.ctx)
        if first is None:
            solutions.append(state.solution())
            return outcome(Status.SAT)

        stack: list[tuple[Variable, object]] = [
            (first, iter(self.value_order(state, first)))
        ]
        check_time = time_limit is not None
        check_nodes = node_limit is not None
        check_cutoff = node_cutoff is not None
        while stack:
            if (check_time and deadline.expired()) or (
                check_nodes and stats.nodes >= node_limit
            ):
                return outcome(Status.UNKNOWN)
            if check_cutoff and stats.nodes >= node_cutoff:
                self._cutoff_hit = True
                return outcome(Status.UNKNOWN)
            var, it = stack[-1]
            val = next(it, None)
            if val is None:
                # every value of this entry failed: unwind to the parent
                stack.pop()
                if stack:
                    state.pop_level()
                continue
            stats.nodes += 1
            if len(stack) > stats.max_depth:
                stats.max_depth = len(stack)
            state.push_level()
            try:
                ok = state.assign(var, val) and self._fixpoint(state)
            except _Timeout:
                return outcome(Status.UNKNOWN)
            if not ok:
                stats.fails += 1
                state.pop_level()
                continue
            nxt = self.var_order(state, self.ctx)
            if nxt is None:
                solutions.append(state.solution())
                if len(solutions) >= max_solutions:
                    return outcome(Status.SAT)
                state.pop_level()  # keep enumerating from this entry
                continue
            stack.append((nxt, iter(self.value_order(state, nxt))))

        # space exhausted
        return outcome(Status.SAT if solutions else Status.UNSAT)
