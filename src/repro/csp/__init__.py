"""A from-scratch finite-domain CSP engine.

This is the substrate the paper delegates to Choco [10]: variables over
finite integer domains, constraint propagation to a fixpoint, and
depth-first backtracking search with pluggable variable/value ordering
heuristics (paper Section III-B lists exactly these ingredients:
propagation, variable ordering, value ordering, added constraints).

Design notes (see also docs/ARCHITECTURE.md): domains are Python-int bitmasks —
``bit v`` set iff value ``v + offset`` is still possible — with a trail for
O(changed) backtracking; propagators are stateless over the current domains
and re-run when a watched variable changes, which keeps them trivially
correct under backtracking.

Example
-------
>>> from repro.csp import Model, Solver
>>> m = Model()
>>> x = m.int_var(0, 2, "x")
>>> y = m.int_var(0, 2, "y")
>>> m.add_all_different_except([x, y], except_value=None)
>>> m.add_non_decreasing([x, y])
>>> out = Solver(m).solve()
>>> out.status.name
'SAT'
"""

from repro.csp.core import Model, Variable
from repro.csp.state import DomainState
from repro.csp.propagators import (
    AllDifferentExceptValue,
    AtMostOneTrue,
    CountEq,
    ExactSumBool,
    NonDecreasing,
    Propagator,
    Table,
    WeightedCountEq,
    WeightedExactSumBool,
)
from repro.csp.heuristics import (
    value_order_ascending,
    value_order_custom,
    value_order_descending,
    value_order_random,
    var_order_dom_deg,
    var_order_input,
    var_order_min_domain,
    var_order_random,
)
from repro.csp.search import SearchStats, Solver, SolveOutcome, Status

__all__ = [
    "Model",
    "Variable",
    "DomainState",
    "Propagator",
    "AtMostOneTrue",
    "ExactSumBool",
    "WeightedExactSumBool",
    "CountEq",
    "WeightedCountEq",
    "AllDifferentExceptValue",
    "NonDecreasing",
    "Table",
    "Solver",
    "SolveOutcome",
    "SearchStats",
    "Status",
    "var_order_input",
    "var_order_min_domain",
    "var_order_dom_deg",
    "var_order_random",
    "value_order_ascending",
    "value_order_descending",
    "value_order_random",
    "value_order_custom",
]
