"""A from-scratch finite-domain CSP engine.

This is the substrate the paper delegates to Choco [10]: variables over
finite integer domains, constraint propagation to a fixpoint, and
depth-first backtracking search with pluggable variable/value ordering
heuristics (paper Section III-B lists exactly these ingredients:
propagation, variable ordering, value ordering, added constraints).

Design notes (see also docs/ARCHITECTURE.md): domains are Python-int bitmasks —
``bit v`` set iff value ``v + offset`` is still possible — with a generic
trail for O(changed) backtracking of domains *and* propagator-owned
counters.  Propagation is incremental and event-driven: every mutation is
a typed event (ASSIGN / BOUNDS / REMOVE), propagators subscribe per event
type and absorb deltas through ``on_event`` in O(1), report entailment to
be deactivated for the rest of the subtree, and drain through a
priority-tiered queue (cheap counter checks before linear passes before
table filtering).  ``Solver(learn=True)`` switches to conflict-directed
search: an implication trail, propagator-supplied explanations, 1-UIP
nogood learning with backjumping, and adaptive (dom/wdeg, last-conflict,
phase-saving) heuristics — see :mod:`repro.csp.learning`.

Example
-------
>>> from repro.csp import Model, Solver
>>> m = Model()
>>> x = m.int_var(0, 2, "x")
>>> y = m.int_var(0, 2, "y")
>>> m.add_all_different_except([x, y], except_value=None)
>>> m.add_non_decreasing([x, y])
>>> out = Solver(m).solve()
>>> out.status.name
'SAT'
"""

from repro.csp.core import Model, Variable
from repro.csp.state import (
    CAUSE_DECISION,
    EVT_ANY,
    EVT_ASSIGN,
    EVT_BOUNDS,
    EVT_REMOVE,
    DomainState,
)
from repro.csp.learning import (
    NogoodStore,
    Trail,
    analyze_conflict,
)
from repro.csp.propagators import (
    PROP_ENTAILED,
    PROP_FAIL,
    PROP_OK,
    AllDifferentExceptValue,
    AtMostOneTrue,
    CountEq,
    ExactSumBool,
    NonDecreasing,
    Propagator,
    Table,
    WeightedCountEq,
    WeightedExactSumBool,
)
from repro.csp.heuristics import (
    make_value_order_phase_saving,
    make_var_order_last_conflict,
    value_order_ascending,
    value_order_custom,
    value_order_descending,
    value_order_random,
    var_order_dom_deg,
    var_order_dom_wdeg,
    var_order_input,
    var_order_min_domain,
    var_order_random,
)
from repro.csp.search import (
    PROPAGATION_ENGINE,
    SearchStats,
    Solver,
    SolveOutcome,
    Status,
)

__all__ = [
    "Model",
    "Variable",
    "DomainState",
    "EVT_REMOVE",
    "EVT_BOUNDS",
    "EVT_ASSIGN",
    "EVT_ANY",
    "PROP_FAIL",
    "PROP_OK",
    "PROP_ENTAILED",
    "PROPAGATION_ENGINE",
    "Propagator",
    "AtMostOneTrue",
    "ExactSumBool",
    "WeightedExactSumBool",
    "CountEq",
    "WeightedCountEq",
    "AllDifferentExceptValue",
    "NonDecreasing",
    "Table",
    "Solver",
    "SolveOutcome",
    "SearchStats",
    "Status",
    "CAUSE_DECISION",
    "NogoodStore",
    "Trail",
    "analyze_conflict",
    "var_order_input",
    "var_order_min_domain",
    "var_order_dom_deg",
    "var_order_dom_wdeg",
    "var_order_random",
    "make_var_order_last_conflict",
    "value_order_ascending",
    "value_order_descending",
    "value_order_random",
    "value_order_custom",
    "make_value_order_phase_saving",
]
