"""Variable- and value-ordering heuristics (paper Section III-B).

A *variable order* is a callable ``(state, context) -> Variable | None``
returning the next unassigned variable to branch on (None = all assigned).
A *value order* is a callable ``(state, var) -> list[int]`` returning the
values to try, best first.  ``context`` carries static search data
(variable degrees, an optional ``random.Random``).

The generic CSP1 solver uses ``min_domain`` (+ optional random tie-break,
reproducing Choco's randomized default-search behaviour observed in
Section VII-B); the generic CSP2 solver uses ``input`` order over
chronologically created variables plus custom per-variable value orders
for the RM/DM/(T-C)/(D-C) task heuristics.
"""

from __future__ import annotations

import random
from collections.abc import Mapping, Sequence
from dataclasses import dataclass, field

from repro.csp.core import Variable
from repro.csp.state import DomainState

__all__ = [
    "SearchContext",
    "var_order_input",
    "var_order_min_domain",
    "var_order_dom_deg",
    "var_order_random",
    "value_order_ascending",
    "value_order_descending",
    "value_order_random",
    "value_order_custom",
]


@dataclass
class SearchContext:
    """Static data shared by heuristics during one solve."""

    degrees: Sequence[int]
    rng: random.Random | None = None
    #: scratch: index of the first possibly-unassigned variable (input order)
    first_unassigned_hint: int = field(default=0)


# -- variable orders ----------------------------------------------------------

def var_order_input(state: DomainState, ctx: SearchContext) -> Variable | None:
    """First unassigned variable in model creation order.

    With CSP2's chronological variable creation this is the paper's
    "time first, then processor id" ordering (Section V-C-1).
    """
    variables = state.model.variables
    masks = state.masks
    for idx in range(ctx.first_unassigned_hint, len(variables)):
        m = masks[idx]
        if m & (m - 1):
            return variables[idx]
    return None


def var_order_min_domain(state: DomainState, ctx: SearchContext) -> Variable | None:
    """Smallest current domain ("most constrained variable" fail-first);
    ties broken by index, or uniformly at random when ``ctx.rng`` is set.

    The deterministic path stops scanning at the first binary domain
    (nothing can beat size 2, and earliest index wins ties anyway); the
    randomized path must keep scanning to collect every tie."""
    rng = ctx.rng
    variables = state.model.variables
    if rng is None:
        best_idx = -1
        best_size = 1 << 62
        for i, m in enumerate(state.masks):
            if not m & (m - 1):
                continue  # assigned
            s = m.bit_count()
            if s < best_size:
                best_size = s
                best_idx = i
                if s == 2:
                    break
        return None if best_idx < 0 else variables[best_idx]
    # randomized path: find the best size first (break early at 2, the
    # floor), then gather the ties in one comprehension pass — same tie
    # list, same order, same rng stream as the one-pass original, but
    # the gather runs at C speed (this is the hottest line of CSP1).
    masks = state.masks
    best_size = 1 << 62
    for m in masks:
        t = m & (m - 1)
        if not t:
            continue  # assigned
        if not t & (t - 1):
            best_size = 2
            break
        s = m.bit_count()
        if s < best_size:
            best_size = s
    if best_size == 1 << 62:
        return None
    if best_size == 2:
        ties = [
            i
            for i, m in enumerate(masks)
            if (t := m & (m - 1)) and not t & (t - 1)
        ]
    else:
        ties = [
            i
            for i, m in enumerate(masks)
            if m & (m - 1) and m.bit_count() == best_size
        ]
    if len(ties) > 1:
        return variables[rng.choice(ties)]
    return variables[ties[0]]


def var_order_dom_deg(state: DomainState, ctx: SearchContext) -> Variable | None:
    """Minimize domain-size / static-degree (a classic refinement of
    min-domain that prefers highly-constrained variables)."""
    best = None
    best_key = None
    for v, m in zip(state.model.variables, state.masks):
        if not m & (m - 1):
            continue
        deg = ctx.degrees[v.index] or 1
        key = (m.bit_count() / deg, v.index)
        if best_key is None or key < best_key:
            best_key = key
            best = v
    return best


def var_order_random(state: DomainState, ctx: SearchContext) -> Variable | None:
    """Uniformly random unassigned variable (requires ``ctx.rng``)."""
    if ctx.rng is None:
        raise ValueError("var_order_random needs a seeded SearchContext.rng")
    pool = [
        v
        for v, m in zip(state.model.variables, state.masks)
        if m & (m - 1)
    ]
    if not pool:
        return None
    return ctx.rng.choice(pool)


# -- value orders -------------------------------------------------------------

def value_order_ascending(state: DomainState, var: Variable) -> list[int]:
    """Smallest value first."""
    return state.values(var)


def value_order_descending(state: DomainState, var: Variable) -> list[int]:
    """Largest value first."""
    return state.values(var)[::-1]


def make_value_order_random(rng: random.Random):
    """Factory: shuffled value order using a shared RNG."""

    def order(state: DomainState, var: Variable) -> list[int]:
        vals = state.values(var)
        rng.shuffle(vals)
        return vals

    return order


# kept as a named symbol so callers can pass it like the other orders;
# they must construct it through make_value_order_random for seeding.
value_order_random = make_value_order_random


def value_order_custom(ranks: Mapping[int, Sequence[int]] | Sequence[int]):
    """Factory: per-variable (by ``var.index``) or global preferred order.

    ``ranks`` is either a mapping ``var.index -> preferred value list`` or a
    single list applied to every variable.  Values present in the current
    domain are tried in preferred order (a value listed twice is tried
    once, at its first position — branching on the same value twice would
    just re-explore an identical subtree); leftover domain values (not
    mentioned in the list) follow in ascending order.
    """

    def order(state: DomainState, var: Variable) -> list[int]:
        if isinstance(ranks, Mapping):
            preferred = ranks.get(var.index, ())
        else:
            preferred = ranks
        mask = state.masks[var.index]
        offset = var.offset
        out = []
        taken = 0  # bitmask of already-emitted values (dedup + leftovers)
        for v in preferred:
            b = v - offset
            if b >= 0 and mask >> b & 1 and not taken >> b & 1:
                taken |= 1 << b
                out.append(v)
        if taken != mask:
            # leftover domain values not mentioned in `preferred`
            out.extend(
                v for v in state.values(var) if not taken >> (v - offset) & 1
            )
        return out

    return order
