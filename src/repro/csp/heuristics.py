"""Variable- and value-ordering heuristics (paper Section III-B).

A *variable order* is a callable ``(state, context) -> Variable | None``
returning the next unassigned variable to branch on (None = all assigned).
A *value order* is a callable ``(state, var) -> list[int]`` returning the
values to try, best first.  ``context`` carries static search data
(variable degrees, an optional ``random.Random``).

The generic CSP1 solver uses ``min_domain`` (+ optional random tie-break,
reproducing Choco's randomized default-search behaviour observed in
Section VII-B); the generic CSP2 solver uses ``input`` order over
chronologically created variables plus custom per-variable value orders
for the RM/DM/(T-C)/(D-C) task heuristics.
"""

from __future__ import annotations

import random
from collections.abc import Mapping, Sequence
from dataclasses import dataclass, field

from repro.csp.core import Variable
from repro.csp.state import DomainState

__all__ = [
    "SearchContext",
    "var_order_input",
    "var_order_min_domain",
    "var_order_dom_deg",
    "var_order_random",
    "value_order_ascending",
    "value_order_descending",
    "value_order_random",
    "value_order_custom",
]


@dataclass
class SearchContext:
    """Static data shared by heuristics during one solve."""

    degrees: Sequence[int]
    rng: random.Random | None = None
    #: scratch: index of the first possibly-unassigned variable (input order)
    first_unassigned_hint: int = field(default=0)


# -- variable orders ----------------------------------------------------------

def var_order_input(state: DomainState, ctx: SearchContext) -> Variable | None:
    """First unassigned variable in model creation order.

    With CSP2's chronological variable creation this is the paper's
    "time first, then processor id" ordering (Section V-C-1).
    """
    variables = state.model.variables
    masks = state.masks
    for idx in range(ctx.first_unassigned_hint, len(variables)):
        m = masks[idx]
        if m & (m - 1):
            return variables[idx]
    return None


def var_order_min_domain(state: DomainState, ctx: SearchContext) -> Variable | None:
    """Smallest current domain ("most constrained variable" fail-first);
    ties broken by index, or uniformly at random when ``ctx.rng`` is set."""
    best: list[Variable] = []
    best_size = None
    for v, m in zip(state.model.variables, state.masks):
        if not m & (m - 1):
            continue  # assigned
        s = m.bit_count()
        if best_size is None or s < best_size:
            best_size = s
            best = [v]
        elif s == best_size and ctx.rng is not None:
            best.append(v)
    if not best:
        return None
    if ctx.rng is not None and len(best) > 1:
        return ctx.rng.choice(best)
    return best[0]


def var_order_dom_deg(state: DomainState, ctx: SearchContext) -> Variable | None:
    """Minimize domain-size / static-degree (a classic refinement of
    min-domain that prefers highly-constrained variables)."""
    best = None
    best_key = None
    for v, m in zip(state.model.variables, state.masks):
        if not m & (m - 1):
            continue
        deg = ctx.degrees[v.index] or 1
        key = (m.bit_count() / deg, v.index)
        if best_key is None or key < best_key:
            best_key = key
            best = v
    return best


def var_order_random(state: DomainState, ctx: SearchContext) -> Variable | None:
    """Uniformly random unassigned variable (requires ``ctx.rng``)."""
    if ctx.rng is None:
        raise ValueError("var_order_random needs a seeded SearchContext.rng")
    pool = [
        v
        for v, m in zip(state.model.variables, state.masks)
        if m & (m - 1)
    ]
    if not pool:
        return None
    return ctx.rng.choice(pool)


# -- value orders -------------------------------------------------------------

def value_order_ascending(state: DomainState, var: Variable) -> list[int]:
    """Smallest value first."""
    return state.values(var)


def value_order_descending(state: DomainState, var: Variable) -> list[int]:
    """Largest value first."""
    return state.values(var)[::-1]


def make_value_order_random(rng: random.Random):
    """Factory: shuffled value order using a shared RNG."""

    def order(state: DomainState, var: Variable) -> list[int]:
        vals = state.values(var)
        rng.shuffle(vals)
        return vals

    return order


# kept as a named symbol so callers can pass it like the other orders;
# they must construct it through make_value_order_random for seeding.
value_order_random = make_value_order_random


def value_order_custom(ranks: Mapping[int, Sequence[int]] | Sequence[int]):
    """Factory: per-variable (by ``var.index``) or global preferred order.

    ``ranks`` is either a mapping ``var.index -> preferred value list`` or a
    single list applied to every variable.  Values present in the current
    domain are tried in preferred order; leftover domain values (not
    mentioned in the list) follow in ascending order.
    """

    def order(state: DomainState, var: Variable) -> list[int]:
        if isinstance(ranks, Mapping):
            preferred = ranks.get(var.index, ())
        else:
            preferred = ranks
        current = state.values(var)
        in_dom = set(current)
        out = [v for v in preferred if v in in_dom]
        chosen = set(out)
        out.extend(v for v in current if v not in chosen)
        return out

    return order
