"""Variable- and value-ordering heuristics (paper Section III-B).

A *variable order* is a callable ``(state, context) -> Variable | None``
returning the next unassigned variable to branch on (None = all assigned).
A *value order* is a callable ``(state, var) -> list[int]`` returning the
values to try, best first.  ``context`` carries static search data
(variable degrees, an optional ``random.Random``).

The generic CSP1 solver uses ``min_domain`` (+ optional random tie-break,
reproducing Choco's randomized default-search behaviour observed in
Section VII-B); the generic CSP2 solver uses ``input`` order over
chronologically created variables plus custom per-variable value orders
for the RM/DM/(T-C)/(D-C) task heuristics.

Three *adaptive* heuristics feed on the conflict statistics the learning
search (``Solver(learn=True)``) maintains in the shared
:class:`SearchContext`:

* :func:`var_order_dom_wdeg` — dom/wdeg weighted degree: every conflict
  bumps the weight of the failing constraint's variables, and the
  heuristic minimizes ``domain size / (static degree + learned weight)``
  so branching drifts toward the variables that keep causing trouble;
* :func:`make_var_order_last_conflict` — last-conflict reasoning: the
  variable whose assignment most recently conflicted is retried first
  until it assigns cleanly, testing whether it is the culprit;
* :func:`make_value_order_phase_saving` — phase saving: a variable first
  retries the value it last held, so backjumps and restarts do not
  un-learn a partial assignment that was working.
"""

from __future__ import annotations

import random
from collections.abc import Mapping, Sequence
from dataclasses import dataclass, field

from repro.csp.core import Variable
from repro.csp.state import DomainState
from repro.kernels import numpy_or_none

__all__ = [
    "SearchContext",
    "var_order_input",
    "var_order_input_vec",
    "var_order_min_domain",
    "var_order_min_domain_vec",
    "var_order_dom_deg",
    "var_order_dom_wdeg",
    "var_order_random",
    "make_var_order_last_conflict",
    "value_order_ascending",
    "value_order_descending",
    "value_order_random",
    "value_order_custom",
    "make_value_order_phase_saving",
]


@dataclass
class SearchContext:
    """Static data shared by heuristics during one solve.

    The last three fields are *conflict statistics* maintained by the
    learning search (``Solver(learn=True)``) and consumed by the
    adaptive heuristics; they stay ``None``/empty on non-learning runs.
    """

    degrees: Sequence[int]
    rng: random.Random | None = None
    #: scratch: index of the first possibly-unassigned variable (input order)
    first_unassigned_hint: int = field(default=0)
    #: per-variable accumulated conflict weight (dom/wdeg); lazily
    #: initialized by the search or by :func:`var_order_dom_wdeg`
    weights: list | None = None
    #: last value each variable held (``var.index -> value``, phase saving)
    phases: dict | None = None
    #: variables of the most recent conflicts, most recent first
    #: (last-conflict reasoning reads the head)
    last_conflicts: list = field(default_factory=list)


# -- variable orders ----------------------------------------------------------

def var_order_input(state: DomainState, ctx: SearchContext) -> Variable | None:
    """First unassigned variable in model creation order.

    With CSP2's chronological variable creation this is the paper's
    "time first, then processor id" ordering (Section V-C-1).
    """
    variables = state.model.variables
    masks = state.masks
    for idx in range(ctx.first_unassigned_hint, len(variables)):
        m = masks[idx]
        if m & (m - 1):
            return variables[idx]
    return None


def var_order_input_vec(state: DomainState, ctx: SearchContext) -> Variable | None:
    """Vectorised :func:`var_order_input` over the int64 shadow masks.

    Picks the same variable (first non-singleton in creation order) via
    one ``mask & (mask - 1)`` sweep of :attr:`DomainState.shadow`;
    falls back to the scalar scan when no shadow is attached or a
    caller moved the scan hint (the vector pass ignores hints).
    """
    shadow = state.shadow
    if shadow is None or ctx.first_unassigned_hint:
        return var_order_input(state, ctx)
    open_ = (shadow & (shadow - 1)) != 0
    idx = int(open_.argmax())
    if not open_[idx]:
        return None
    return state.model.variables[idx]


def var_order_min_domain(state: DomainState, ctx: SearchContext) -> Variable | None:
    """Smallest current domain ("most constrained variable" fail-first);
    ties broken by index, or uniformly at random when ``ctx.rng`` is set.

    The deterministic path stops scanning at the first binary domain
    (nothing can beat size 2, and earliest index wins ties anyway); the
    randomized path must keep scanning to collect every tie."""
    rng = ctx.rng
    variables = state.model.variables
    if rng is None:
        best_idx = -1
        best_size = 1 << 62
        for i, m in enumerate(state.masks):
            if not m & (m - 1):
                continue  # assigned
            s = m.bit_count()
            if s < best_size:
                best_size = s
                best_idx = i
                if s == 2:
                    break
        return None if best_idx < 0 else variables[best_idx]
    # randomized path: find the best size first (break early at 2, the
    # floor), then gather the ties in one comprehension pass — same tie
    # list, same order, same rng stream as the one-pass original, but
    # the gather runs at C speed (this is the hottest line of CSP1).
    masks = state.masks
    best_size = 1 << 62
    for m in masks:
        t = m & (m - 1)
        if not t:
            continue  # assigned
        if not t & (t - 1):
            best_size = 2
            break
        s = m.bit_count()
        if s < best_size:
            best_size = s
    if best_size == 1 << 62:
        return None
    if best_size == 2:
        ties = [
            i
            for i, m in enumerate(masks)
            if (t := m & (m - 1)) and not t & (t - 1)
        ]
    else:
        ties = [
            i
            for i, m in enumerate(masks)
            if m & (m - 1) and m.bit_count() == best_size
        ]
    if len(ties) > 1:
        return variables[rng.choice(ties)]
    return variables[ties[0]]


def var_order_min_domain_vec(state: DomainState, ctx: SearchContext) -> Variable | None:
    """Vectorised deterministic :func:`var_order_min_domain`.

    One ``np.bitwise_count`` + masked argmin over the shadow array
    picks the same (first-index) smallest open domain.  The randomized
    tie-breaking path must enumerate every tie through the seeded rng,
    so it always defers to the scalar implementation — as do runs with
    no shadow attached or a numpy build without ``bitwise_count``.
    """
    shadow = state.shadow
    if shadow is None or ctx.rng is not None:
        return var_order_min_domain(state, ctx)
    np = numpy_or_none()
    if np is None or not hasattr(np, "bitwise_count"):
        return var_order_min_domain(state, ctx)
    sizes = np.bitwise_count(shadow).astype(np.int64)
    sizes = np.where(sizes > 1, sizes, np.int64(1 << 30))
    idx = int(sizes.argmin())
    if sizes[idx] >= 1 << 30:
        return None
    return state.model.variables[idx]


def var_order_dom_deg(state: DomainState, ctx: SearchContext) -> Variable | None:
    """Minimize domain-size / static-degree (a classic refinement of
    min-domain that prefers highly-constrained variables)."""
    best = None
    best_key = None
    for v, m in zip(state.model.variables, state.masks):
        if not m & (m - 1):
            continue
        deg = ctx.degrees[v.index] or 1
        key = (m.bit_count() / deg, v.index)
        if best_key is None or key < best_key:
            best_key = key
            best = v
    return best


def var_order_dom_wdeg(state: DomainState, ctx: SearchContext) -> Variable | None:
    """Minimize domain-size / (static degree + conflict weight).

    The weighted-degree heuristic of Boussemart et al.: the search bumps
    ``ctx.weights`` for every variable of a failing constraint, so
    repeatedly conflicting variables are branched on earlier.  Before
    the first conflict this coincides with :func:`var_order_dom_deg`;
    ties break by variable index."""
    weights = ctx.weights
    if weights is None:
        weights = ctx.weights = [0.0] * len(state.masks)
    best = None
    best_key = None
    for v, m in zip(state.model.variables, state.masks):
        if not m & (m - 1):
            continue
        i = v.index
        # zero degree + zero weight falls back to 1, same as dom/deg, so
        # the two heuristics coincide before the first conflict
        denom = (ctx.degrees[i] + weights[i]) or 1
        key = (m.bit_count() / denom, i)
        if best_key is None or key < best_key:
            best_key = key
            best = v
    return best


def make_var_order_last_conflict(base):
    """Factory: last-conflict reasoning layered over ``base``.

    If a variable from a recent conflict (``ctx.last_conflicts``) is
    still unassigned, branch on it first — if it is the real culprit the
    refutation happens near the top of the subtree instead of after
    re-exploring everything below it.  Otherwise defer to ``base``."""

    def order(state: DomainState, ctx: SearchContext) -> Variable | None:
        masks = state.masks
        for idx in ctx.last_conflicts:
            m = masks[idx]
            if m & (m - 1):
                return state.model.variables[idx]
        return base(state, ctx)

    return order


def var_order_random(state: DomainState, ctx: SearchContext) -> Variable | None:
    """Uniformly random unassigned variable (requires ``ctx.rng``)."""
    if ctx.rng is None:
        raise ValueError("var_order_random needs a seeded SearchContext.rng")
    pool = [
        v
        for v, m in zip(state.model.variables, state.masks)
        if m & (m - 1)
    ]
    if not pool:
        return None
    return ctx.rng.choice(pool)


# -- value orders -------------------------------------------------------------

def value_order_ascending(state: DomainState, var: Variable) -> list[int]:
    """Smallest value first."""
    return state.values(var)


def value_order_descending(state: DomainState, var: Variable) -> list[int]:
    """Largest value first."""
    return state.values(var)[::-1]


def make_value_order_random(rng: random.Random):
    """Factory: shuffled value order using a shared RNG."""

    def order(state: DomainState, var: Variable) -> list[int]:
        vals = state.values(var)
        rng.shuffle(vals)
        return vals

    return order


# kept as a named symbol so callers can pass it like the other orders;
# they must construct it through make_value_order_random for seeding.
value_order_random = make_value_order_random


def make_value_order_phase_saving(base, phases: Mapping[int, int]):
    """Factory: try each variable's previously-held value first.

    ``phases`` is the shared ``var.index -> last value`` mapping the
    learning search maintains (``SearchContext.phases``); values the
    variable no longer has — or never had recorded — leave the ``base``
    order untouched."""

    def order(state: DomainState, var: Variable) -> list[int]:
        vals = base(state, var)
        saved = phases.get(var.index)
        if saved is None or not vals or vals[0] == saved:
            return vals
        b = saved - var.offset
        if b < 0 or not state.masks[var.index] >> b & 1:
            return vals  # saved value no longer available
        out = [saved]
        out.extend(v for v in vals if v != saved)
        return out

    return order


def value_order_custom(ranks: Mapping[int, Sequence[int]] | Sequence[int]):
    """Factory: per-variable (by ``var.index``) or global preferred order.

    ``ranks`` is either a mapping ``var.index -> preferred value list`` or a
    single list applied to every variable.  Values present in the current
    domain are tried in preferred order (a value listed twice is tried
    once, at its first position — branching on the same value twice would
    just re-explore an identical subtree); leftover domain values (not
    mentioned in the list) follow in ascending order.
    """

    def order(state: DomainState, var: Variable) -> list[int]:
        if isinstance(ranks, Mapping):
            preferred = ranks.get(var.index, ())
        else:
            preferred = ranks
        mask = state.masks[var.index]
        offset = var.offset
        out = []
        taken = 0  # bitmask of already-emitted values (dedup + leftovers)
        for v in preferred:
            b = v - offset
            if b >= 0 and mask >> b & 1 and not taken >> b & 1:
                taken |= 1 << b
                out.append(v)
        if taken != mask:
            # leftover domain values not mentioned in `preferred`
            out.extend(
                v for v in state.values(var) if not taken >> (v - offset) & 1
            )
        return out

    return order
