"""Conflict-directed learning: literal trail, nogood store, 1-UIP analysis.

This module turns the implication trail recorded by
:class:`~repro.csp.state.DomainState` (``record_causes=True``) into the
three ingredients of conflict-directed search:

**Literals.**  A literal is a ``(var_index, value, sign)`` triple:
``sign=True`` reads "the variable *is assigned* ``value``", ``sign=False``
reads "``value`` has been *removed* from the variable's domain".  Every
typed domain event makes one or more literals true — an event that
collapses a domain to a singleton makes the positive literal true, every
removed value makes a negative literal true.

**The literal trail** (:class:`Trail`) is an incremental index over the
state's event log: for each literal it records the event *position* at
which the literal first became true, and per decision level the event
mark at which the level opened, so ``level_of(position)`` answers "which
decision is this literal younger than".  The search keeps the trail
synced after every propagation fixpoint and truncates it together with
the domains on backtracking.

**Nogoods** are conjunctions of literals that cannot all hold (the CSP
analogue of a learned SAT clause: the nogood ``l1 ∧ … ∧ lk`` *is* the
clause ``¬l1 ∨ … ∨ ¬lk``).  The :class:`NogoodStore` propagates them
with two watched literals per nogood — a nogood only wakes when one of
its two watches becomes true, and when every literal but one is true it
forces the negation of the last (removing a value, or assigning one).
The store is bounded: when it outgrows its capacity, the lowest-activity
nogoods are forgotten, except short ones (≤ 2 literals) and nogoods that
are the recorded reason of a current trail event.

**Conflict analysis** (:func:`analyze_conflict`) resolves a failure back
to the *first unique implication point*: starting from the failing
propagator's explanation, literals of the conflict level are replaced by
their reasons — asking the causing propagator to
:meth:`~repro.csp.propagators.Propagator.explain_event`, expanding a
nogood forcing into the nogood's other literals, or falling back to the
sound decision-prefix reason — until a single conflict-level literal
remains.  The result is an *asserting* nogood: after backjumping to the
second-deepest level in it, every literal but the UIP holds, so the
store immediately forces the UIP's negation and the search continues
without re-exploring the refuted region.
"""

from __future__ import annotations

import heapq
from bisect import bisect_right

from repro.csp.state import CAUSE_DECISION, DomainState
from repro.util.bitset import values_from_mask

__all__ = [
    "Lit",
    "lit_is_true",
    "lit_is_false",
    "apply_negation",
    "Trail",
    "Nogood",
    "NogoodStore",
    "analyze_conflict",
]

#: a literal: ``(var_index, value, sign)`` — sign True = "var == value",
#: sign False = "value removed from var" (type alias for documentation)
Lit = tuple

#: forgetting keeps nogoods at or under this many literals unconditionally
_KEEP_LEN = 2

#: activity rescale threshold (MiniSat-style exponential decay)
_ACT_CAP = 1e100


def lit_is_true(state: DomainState, lit) -> bool:
    """Whether the literal currently holds in ``state``."""
    idx, val, sign = lit
    b = val - state.model.variables[idx].offset
    m = state.masks[idx]
    if b < 0 or not m >> b & 1:
        return not sign  # value not in the domain: x==v false, x!=v true
    if sign:
        return m == 1 << b
    return False


def lit_is_false(state: DomainState, lit) -> bool:
    """Whether the literal's negation currently holds in ``state``."""
    idx, val, sign = lit
    b = val - state.model.variables[idx].offset
    m = state.masks[idx]
    if b < 0 or not m >> b & 1:
        return sign  # value gone: x==v is false, x!=v is (true, not false)
    if sign:
        return False  # v still present and domain not singleton-checked
    return m == 1 << b  # x assigned v falsifies x!=v


def apply_negation(state: DomainState, lit) -> bool:
    """Enforce the *negation* of ``lit``; False if the domain wipes out.

    The caller sets :attr:`DomainState.cause` first so the resulting
    event is attributed to the forcing nogood.
    """
    idx, val, sign = lit
    var = state.model.variables[idx]
    if sign:
        return state.remove_value(var, val)  # ¬(x==v) ⇒ remove v
    return state.assign(var, val)  # ¬(x!=v) ⇒ x := v


class Trail:
    """Incremental literal index over a state's event log.

    ``pos_of[lit]`` is the event position at which ``lit`` first became
    true in the current search branch; ``log`` lists the literals in
    position order (the nogood store consumes it as its wake queue);
    ``marks`` holds the event count at which each open decision level
    started, so :meth:`level_of` maps a position to its decision level.
    """

    __slots__ = ("state", "pos_of", "log", "marks", "synced", "_offsets")

    def __init__(self, state: DomainState) -> None:
        self.state = state
        self.pos_of: dict[tuple, int] = {}
        self.log: list[tuple] = []
        self.marks: list[int] = []
        self.synced = 0
        self._offsets = [v.offset for v in state.model.variables]

    def sync(self) -> None:
        """Index every event recorded since the last sync."""
        events = self.state.events
        n = len(events)
        i = self.synced
        if i >= n:
            return
        pos_of = self.pos_of
        log = self.log
        offsets = self._offsets
        while i < n:
            idx, old, new, _ev = events[i]
            off = offsets[idx]
            removed = old & ~new
            while removed:
                low = removed & -removed
                removed ^= low
                lit = (idx, off + low.bit_length() - 1, False)
                if lit not in pos_of:
                    pos_of[lit] = i
                    log.append(lit)
            if not new & (new - 1):  # collapsed to a singleton
                lit = (idx, off + new.bit_length() - 1, True)
                if lit not in pos_of:
                    pos_of[lit] = i
                    log.append(lit)
            i += 1
        self.synced = n

    def truncate(self) -> None:
        """Drop index entries for events undone by backtracking."""
        n = len(self.state.events)
        pos_of = self.pos_of
        log = self.log
        while log and pos_of[log[-1]] >= n:
            del pos_of[log.pop()]
        if self.synced > n:
            self.synced = n

    def push_mark(self) -> None:
        """Record the event mark of a newly opened decision level."""
        self.marks.append(len(self.state.events))

    def pop_marks(self, level: int) -> None:
        """Forget the marks of every level above ``level``."""
        del self.marks[level:]

    def level_of(self, pos: int) -> int:
        """Decision level of the event at ``pos`` (0 = root)."""
        return bisect_right(self.marks, pos)


class Nogood:
    """One learned nogood: a forbidden conjunction of literals.

    ``w1``/``w2`` are the two watched literals (None for unary nogoods,
    which are enforced once at the root instead of being watched)."""

    __slots__ = ("id", "lits", "activity", "w1", "w2")

    def __init__(self, nid: int, lits: tuple) -> None:
        self.id = nid
        self.lits = lits
        self.activity = 0.0
        self.w1 = None
        self.w2 = None

    def __repr__(self) -> str:
        return f"Nogood#{self.id}({len(self.lits)} lits)"


class NogoodStore:
    """Bounded learned-nogood database with watched-literal propagation.

    Parameters
    ----------
    capacity:
        Soft bound on the number of stored nogoods; exceeding it triggers
        :meth:`reduce`, which forgets the lowest-activity half (never
        nogoods of ≤ 2 literals, never nogoods locked as the reason of a
        current trail event).
    """

    def __init__(self, capacity: int = 10_000) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.by_id: dict[int, Nogood] = {}
        self.watches: dict[tuple, list[Nogood]] = {}
        #: cursor into the trail's literal log (wake queue position)
        self.seen = 0
        self._next_id = 0
        self._act_inc = 1.0

    def __len__(self) -> int:
        return len(self.by_id)

    # -- bookkeeping ----------------------------------------------------------
    def add(self, lits, state: DomainState, trail: Trail) -> Nogood:
        """Register a learned nogood and set up its watches.

        For an asserting nogood the caller passes the UIP literal *first*
        — it is watched together with the deepest of the remaining
        (currently true) literals, so the nogood wakes exactly when it
        can force again after backtracking.

        Known incompleteness: watches only wake on *newly-true* literals
        (fresh trail-log entries), but a backjump can silently return a
        nogood to the all-but-one-true state — unwinding levels makes
        literals open again without logging anything, and both watches
        may sit on still-true literals whose log entries the ``seen``
        cursor already consumed.  The search compensates for the common
        case by calling :meth:`reexamine` after every backjump on the
        nogoods whose own forcings were undone; the residual misses
        (a non-nogood falsifier undone while both watches stay true)
        cost only pruning, never soundness — the violated state is still
        detected when its last literal becomes true.
        """
        ng = Nogood(self._next_id, tuple(lits))
        self._next_id += 1
        self.by_id[ng.id] = ng
        ng.activity = self._act_inc
        if len(ng.lits) >= 2:
            pos_of = trail.pos_of
            rest = ng.lits[1:]
            deepest = max(rest, key=lambda l: pos_of.get(l, -1))
            ng.w1 = ng.lits[0]
            ng.w2 = deepest
            self.watches.setdefault(ng.w1, []).append(ng)
            self.watches.setdefault(ng.w2, []).append(ng)
        return ng

    def bump(self, ng: Nogood) -> None:
        """Raise a nogood's activity (it took part in a conflict)."""
        ng.activity += self._act_inc
        if ng.activity > _ACT_CAP:
            for other in self.by_id.values():
                other.activity /= _ACT_CAP
            self._act_inc /= _ACT_CAP

    def decay(self) -> None:
        """Exponentially decay all activities (one step per conflict)."""
        self._act_inc /= 0.95

    def locked_ids(self, state: DomainState) -> set[int]:
        """Ids of nogoods recorded as the reason of a live trail event."""
        causes = state.causes or ()
        return {-2 - c for c in causes if c <= -2}

    def reduce(self, state: DomainState) -> int:
        """Forget the lowest-activity half; returns how many were dropped.

        Nogoods of ≤ 2 literals and nogoods locked as reasons survive
        unconditionally (forgetting a locked reason would break conflict
        analysis of the events it produced).
        """
        locked = self.locked_ids(state)
        candidates = [
            ng
            for ng in self.by_id.values()
            if len(ng.lits) > _KEEP_LEN and ng.id not in locked
        ]
        if not candidates:
            return 0
        candidates.sort(key=lambda ng: ng.activity)
        drop = candidates[: max(1, len(candidates) // 2)]
        for ng in drop:
            del self.by_id[ng.id]
        dropped = set(drop)
        for lit, row in list(self.watches.items()):
            kept = [ng for ng in row if ng not in dropped]
            if kept:
                self.watches[lit] = kept
            else:
                del self.watches[lit]
        return len(drop)

    # -- propagation ----------------------------------------------------------
    def on_true(self, lit, state: DomainState) -> Nogood | None:
        """A literal just became true: service the nogoods watching it.

        Each watcher either moves its watch to another non-true literal,
        stays inert (some literal is already false), forces the negation
        of its last non-true literal (attributing the event to itself via
        :attr:`DomainState.cause`), or reports itself as the conflict.
        Returns the conflicting nogood, or None.
        """
        row = self.watches.get(lit)
        if not row:
            return None
        keep: list[Nogood] = []
        conflict: Nogood | None = None
        i = 0
        for i, ng in enumerate(row):
            other = ng.w2 if ng.w1 == lit else ng.w1
            # try to move this watch to a literal that is not (yet) true
            moved = False
            for cand in ng.lits:
                if cand == lit or cand == other:
                    continue
                if not lit_is_true(state, cand):
                    if ng.w1 == lit:
                        ng.w1 = cand
                    else:
                        ng.w2 = cand
                    self.watches.setdefault(cand, []).append(ng)
                    moved = True
                    break
            if moved:
                continue
            keep.append(ng)
            if lit_is_false(state, other):
                continue  # some literal is false: the nogood is inert here
            if lit_is_true(state, other):
                conflict = ng  # every literal holds: the nogood is violated
                break
            prev = state.cause
            state.cause = -2 - ng.id
            ok = apply_negation(state, other)
            state.cause = prev
            if not ok:
                conflict = ng
                break
        if conflict is not None:
            keep.extend(row[i + 1 :])
        if keep:
            self.watches[lit] = keep
        else:
            self.watches.pop(lit, None)
        return conflict

    def reexamine(self, ng: Nogood, state: DomainState) -> Nogood | None:
        """Re-evaluate one nogood whose forcing a backjump just undid.

        Backjumping reopens literals without making anything newly true,
        so the watched-literal scheme gets no wake — a nogood whose
        forced negation was popped can already be back in the
        all-but-one-true state.  Re-derives the forcing (attributed to
        ``ng`` so conflict analysis can explain it): returns ``ng`` when
        it is violated or its forcing wipes a domain out, None otherwise.
        """
        pending = None
        for l in ng.lits:
            if lit_is_true(state, l):
                continue
            if lit_is_false(state, l):
                return None  # a literal is false: the nogood is inert
            if pending is not None:
                return None  # two open literals: nothing to force yet
            pending = l
        if pending is None:
            return ng  # every literal holds: violated
        prev = state.cause
        state.cause = -2 - ng.id
        ok = apply_negation(state, pending)
        state.cause = prev
        return None if ok else ng


class _Fallback(Exception):
    """Internal: a reason could not be validated; use the decision nogood."""


def _assignment_prefix(lit, pos, state):
    """Reason literals an assignment literal needs *beyond* its event.

    A positive literal ``x==w`` anchored at event ``pos`` holds because
    the event collapsed the domain to ``{w}`` — but the collapse needed
    every *earlier* removal on ``x`` too, and the recorded cause only
    explains the removals of the event itself.  Returns the negative
    literals ``(x, u, False)`` for every value ``u`` removed from ``x``
    before ``pos`` (root-level removals are filtered out later by the
    analyzer, like any root fact).  Empty for negative literals and for
    events that pruned the variable's full initial domain themselves.
    """
    idx, _val, sign = lit
    if not sign:
        return ()
    old = state.events[pos][1]
    var = state.model.variables[idx]
    prior = var.initial_mask & ~old
    if not prior:
        return ()
    return [
        (idx, u, False) for u in values_from_mask(prior, var.offset)
    ]


def _reason_of(lit, pos, state, trail, props, store, decisions):
    """Literals (true before ``pos``) that forced the event at ``pos``.

    Dispatches on the recorded cause: a forcing nogood explains with its
    other literals, a propagator with
    :meth:`~repro.csp.propagators.Propagator.explain_event` (checked for
    soundness: every returned literal must have become true strictly
    before ``pos``), and anything unexplained falls back to the decision
    prefix of the event's level — sound because every event is a
    deterministic consequence of the decisions above it.

    When ``lit`` is a positive assignment literal ``x==w``, the
    dispatched reason only covers the anchoring event's own removals, so
    it is extended with :func:`_assignment_prefix` — the removals that
    shrank ``x`` *before* the event.  Exception: a forcing nogood that
    contains ``(x, w, False)`` forced the assignment itself (it applied
    ``¬(x!=w)``, which is ``x==w`` in solution semantics), so its other
    literals already imply the assignment outright.

    Raises :class:`_Fallback` when even the dispatch is inconsistent
    (e.g. a decision literal asked to explain itself), telling
    :func:`analyze_conflict` to fall back to the plain decision nogood.
    """
    cause = state.causes[pos]
    pos_of = trail.pos_of
    if cause <= -2:
        ng = store.by_id.get(-2 - cause)
        if ng is None:
            raise _Fallback  # reason forgotten (must not happen: locked)
        store.bump(ng)
        out = [l for l in ng.lits if pos_of.get(l, pos) < pos]
        idx, val, sign = lit
        if sign and (idx, val, False) not in ng.lits:
            # the nogood only removed a value; the collapse to ``val``
            # also needed every earlier removal on the variable
            out.extend(_assignment_prefix(lit, pos, state))
        return out
    if cause == CAUSE_DECISION:
        # only removal spellings of a decision assignment land here (the
        # canonical decision literal is the UIP by construction); they
        # are implied by the canonical literal
        raise _Fallback
    reason = props[cause].explain_event(state, trail, pos)
    if reason is None:
        return decisions[: trail.level_of(pos)]
    out = []
    for l in reason:
        p = pos_of.get(l)
        if p is None:
            if not lit_is_true(state, l):
                raise _Fallback  # not even true: the explanation is bogus
            continue  # true since the root: contributes nothing
        if p >= pos:
            raise _Fallback  # "reason" younger than the consequence
        out.append(l)
    out.extend(_assignment_prefix(lit, pos, state))
    return out


def analyze_conflict(conflict_lits, state, trail, props, store, decisions):
    """Resolve a conflict to an asserting 1-UIP nogood.

    Parameters
    ----------
    conflict_lits:
        Literals (all currently true) whose conjunction is the failure's
        reason — a failing propagator's explanation or a violated
        nogood's literals.
    state, trail:
        The domain state (with causes) and the synced literal trail.
    props:
        The solver's propagator list (cause ids index into it).
    store:
        The nogood store (forcing causes resolve through it; activities
        of involved nogoods are bumped).
    decisions:
        The canonical decision literal of each open level, in order.

    Returns
    -------
    ``(nogood_lits, uip_lit, backjump_level)`` where ``nogood_lits``
    ends with the UIP literal, or ``None`` when the conflict holds at
    the root — the instance is unsatisfiable.
    """
    events = state.events
    variables = state.model.variables
    pos_of = trail.pos_of
    level_of = trail.level_of

    def canonical(lit):
        """Collapse assignment-event spellings onto the positive literal."""
        p = pos_of.get(lit)
        if p is None:
            return lit, None
        idx, _old, new, _ev = events[p]
        if not new & (new - 1):  # the event assigned the variable
            clit = (idx, variables[idx].offset + new.bit_length() - 1, True)
            if clit != lit:
                p2 = pos_of.get(clit, p)
                return clit, p2
        return lit, p

    try:
        # seed with the conflict reason; the conflict level is the
        # deepest level represented in it
        seed = []
        conflict_level = 0
        for lit in conflict_lits:
            lit, p = canonical(lit)
            if p is None:
                continue  # root fact
            lvl = level_of(p)
            if lvl == 0:
                continue
            seed.append((lit, p, lvl))
            if lvl > conflict_level:
                conflict_level = lvl
        if conflict_level == 0:
            return None  # conflict already implied at the root: UNSAT

        seen: set = set()
        heap: list = []  # max-heap by position over conflict-level lits
        learned: list = []  # literals from earlier levels
        counter = 0

        def add_lit(lit):
            nonlocal counter
            lit, p = canonical(lit)
            if p is None or lit in seen:
                return
            lvl = level_of(p)
            if lvl == 0:
                return
            seen.add(lit)
            if lvl == conflict_level:
                heapq.heappush(heap, (-p, lit))
                counter += 1
            else:
                learned.append(lit)

        for lit, _p, _lvl in seed:
            add_lit(lit)

        while counter > 1:
            negp, lit = heapq.heappop(heap)
            counter -= 1
            for l in _reason_of(
                lit, -negp, state, trail, props, store, decisions
            ):
                add_lit(l)

        if counter == 0:
            # the conflict-level literals all resolved into earlier
            # levels: the earlier-level set is itself a violated nogood —
            # analyze it at *its* deepest level
            if not learned:
                return None
            return analyze_conflict(
                learned, state, trail, props, store, decisions
            )

        uip = heapq.heappop(heap)[1]
    except _Fallback:
        # sound fallback: the decisions alone imply this conflict
        prefix = decisions[: max(1, _deepest_level(conflict_lits, trail))]
        return list(prefix), prefix[-1], len(prefix) - 1

    backjump = 0
    for l in learned:
        lvl = level_of(pos_of[l])
        if lvl > backjump:
            backjump = lvl
    return learned + [uip], uip, backjump


def _deepest_level(lits, trail: Trail) -> int:
    """Deepest decision level among the (recorded) literals."""
    deepest = 0
    for lit in lits:
        p = trail.pos_of.get(lit)
        if p is not None:
            lvl = trail.level_of(p)
            if lvl > deepest:
                deepest = lvl
    return deepest
