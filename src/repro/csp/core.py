"""CSP variables and models."""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from repro.util.bitset import mask_of, values_from_mask

__all__ = ["Variable", "Model"]


class Variable:
    """A finite-domain integer variable.

    The initial domain is a set of integers stored as a bitmask relative to
    ``offset`` (the domain minimum): bit ``b`` represents value
    ``offset + b``.  Variables are created through :class:`Model` factory
    methods, never directly.
    """

    __slots__ = ("index", "name", "offset", "initial_mask")

    def __init__(self, index: int, name: str, offset: int, initial_mask: int) -> None:
        if initial_mask == 0:
            raise ValueError(f"variable {name!r} created with an empty domain")
        self.index = index
        self.name = name
        self.offset = offset
        self.initial_mask = initial_mask

    @property
    def initial_size(self) -> int:
        """Number of values in the initial domain."""
        return self.initial_mask.bit_count()

    def initial_values(self) -> list[int]:
        """Initial domain as a sorted list of integers."""
        return values_from_mask(self.initial_mask, self.offset)

    def __repr__(self) -> str:
        return f"Variable({self.name!r}, dom={self.initial_values()!r})"


class Model:
    """A CSP: variables plus constraints (paper Section III-A).

    Variable creation order matters: the ``input`` variable-ordering
    heuristic branches in creation order, which is how the chronological
    ordering of CSP2 is expressed (Section V-C-1).
    """

    def __init__(self) -> None:
        self.variables: list[Variable] = []
        self.constraints: list = []

    # -- variable factories -------------------------------------------------
    def int_var(self, lo: int, hi: int, name: str | None = None) -> Variable:
        """New variable with contiguous domain ``{lo, .., hi}``."""
        if hi < lo:
            raise ValueError(f"empty domain: lo={lo} > hi={hi}")
        mask = (1 << (hi - lo + 1)) - 1
        return self._new(name, lo, mask)

    def int_var_from(self, values: Iterable[int], name: str | None = None) -> Variable:
        """New variable whose domain is an arbitrary finite set."""
        vals = sorted(set(values))
        if not vals:
            raise ValueError("empty domain")
        offset = vals[0]
        mask = mask_of(v - offset for v in vals)
        return self._new(name, offset, mask)

    def bool_var(self, name: str | None = None) -> Variable:
        """New 0/1 variable."""
        return self.int_var(0, 1, name)

    def constant(self, value: int, name: str | None = None) -> Variable:
        """A variable fixed to one value (handy in encodings)."""
        return self.int_var(value, value, name)

    def _new(self, name: str | None, offset: int, mask: int) -> Variable:
        idx = len(self.variables)
        var = Variable(idx, name or f"v{idx}", offset, mask)
        self.variables.append(var)
        return var

    # -- constraint posting ----------------------------------------------------
    def add(self, constraint) -> None:
        """Post a propagator built elsewhere."""
        self.constraints.append(constraint)

    # Convenience wrappers so encodings read close to the paper's notation.
    def add_at_most_one_true(self, bools: Sequence[Variable]) -> None:
        """``sum b_k <= 1`` over boolean variables (constraints (3)/(4))."""
        from repro.csp.propagators import AtMostOneTrue

        self.add(AtMostOneTrue(bools))

    def add_exact_sum_bool(self, bools: Sequence[Variable], total: int) -> None:
        """``sum b_k == total`` over booleans (constraint (5))."""
        from repro.csp.propagators import ExactSumBool

        self.add(ExactSumBool(bools, total))

    def add_weighted_exact_sum_bool(
        self, bools: Sequence[Variable], coefs: Sequence[int], total: int
    ) -> None:
        """``sum c_k b_k == total``, ``c_k >= 0`` (constraint (11))."""
        from repro.csp.propagators import WeightedExactSumBool

        self.add(WeightedExactSumBool(bools, coefs, total))

    def add_count_eq(self, vars: Sequence[Variable], value: int, total: int) -> None:
        """``#{k : x_k == value} == total`` (constraint (9))."""
        from repro.csp.propagators import CountEq

        self.add(CountEq(vars, value, total))

    def add_weighted_count_eq(
        self, vars: Sequence[Variable], coefs: Sequence[int], value: int, total: int
    ) -> None:
        """``sum_k c_k [x_k == value] == total`` (constraint (12))."""
        from repro.csp.propagators import WeightedCountEq

        self.add(WeightedCountEq(vars, coefs, value, total))

    def add_all_different_except(
        self, vars: Sequence[Variable], except_value: int | None
    ) -> None:
        """Pairwise difference, ignoring ``except_value`` (constraint (8))."""
        from repro.csp.propagators import AllDifferentExceptValue

        self.add(AllDifferentExceptValue(vars, except_value))

    def add_non_decreasing(self, vars: Sequence[Variable]) -> None:
        """``x_1 <= x_2 <= ..`` — the symmetry-breaking rule (10)."""
        from repro.csp.propagators import NonDecreasing

        self.add(NonDecreasing(vars))

    def add_table(
        self, vars: Sequence[Variable], tuples: Iterable[Sequence[int]]
    ) -> None:
        """Positive table constraint: the tuple of values must be listed."""
        from repro.csp.propagators import Table

        self.add(Table(vars, tuples))

    # -- introspection -----------------------------------------------------------
    @property
    def n_variables(self) -> int:
        return len(self.variables)

    @property
    def n_constraints(self) -> int:
        return len(self.constraints)

    def degrees(self) -> list[int]:
        """Number of constraints mentioning each variable (for dom/deg)."""
        deg = [0] * len(self.variables)
        for c in self.constraints:
            for v in c.vars:
                deg[v.index] += 1
        return deg

    def __repr__(self) -> str:
        return f"Model(vars={self.n_variables}, constraints={self.n_constraints})"
