"""Common result types for every MGRTS solver."""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from repro.schedule.schedule import Schedule

__all__ = ["Feasibility", "SolverStats", "SolveResult", "learning_extra_stats"]


def learning_extra_stats(stats) -> dict:
    """Learning counters of a ``SearchStats``, as ``SolverStats.extra``
    entries.

    Shared by every ``+learn`` solver adapter so conflict/nogood
    provenance round-trips uniformly through ``SolveReport`` JSONL.
    """
    return {
        "conflicts": stats.conflicts,
        "learned": stats.learned,
        "forgotten": stats.forgotten,
        "backjumps": stats.backjumps,
        "max_backjump": stats.max_backjump,
    }


class Feasibility(Enum):
    """Answer of a solve run.

    ``UNKNOWN`` is the paper's *overrun*: the budget expired before the
    systematic search could either find a schedule or exhaust the space
    (Section VII-C counts these against each solver).
    """

    FEASIBLE = "feasible"
    INFEASIBLE = "infeasible"
    UNKNOWN = "unknown"


@dataclass
class SolverStats:
    """Search-effort counters, normalized across solver families."""

    nodes: int = 0
    fails: int = 0
    propagations: int = 0
    max_depth: int = 0
    elapsed: float = 0.0
    #: family-specific extras (e.g. SAT conflicts/restarts)
    extra: dict = field(default_factory=dict)


@dataclass
class SolveResult:
    """Outcome of one solver on one instance.

    ``decided_by`` is the answer's provenance: which analysis test or
    engine actually produced the verdict.  Plain solvers leave it
    ``None`` (the consumer falls back to ``solver_name``); the meta
    solvers fill it in — a screening cascade records the deciding
    polynomial test (``"necessary:utilization"``, ...), a portfolio the
    winning member — so screened/raced answers stay attributable after
    JSONL round-trips.
    """

    status: Feasibility
    schedule: Schedule | None
    stats: SolverStats
    solver_name: str
    decided_by: str | None = None

    @property
    def is_feasible(self) -> bool:
        """True iff the solver produced a schedule."""
        return self.status is Feasibility.FEASIBLE

    @property
    def timed_out(self) -> bool:
        """True iff the budget expired without an answer (an overrun)."""
        return self.status is Feasibility.UNKNOWN

    def __repr__(self) -> str:
        return (
            f"SolveResult({self.solver_name}: {self.status.value}, "
            f"{self.stats.elapsed:.3f}s, nodes={self.stats.nodes})"
        )
