"""Solver facade: every way this library can answer an MGRTS instance.

All solvers share one result type (:class:`SolveResult`) and one calling
convention: ``solver.solve(time_limit=..) -> SolveResult``.  Solver
families register themselves in the declarative registry
(:mod:`repro.solvers.registry`); names are parsed by
:class:`~repro.solvers.spec.SolverSpec`::

    csp1        CSP1 on the generic engine (the paper's Choco run)
    csp2        dedicated chronological solver, task-index value order
    csp2+rm     ... Rate Monotonic value order
    csp2+dm     ... Deadline Monotonic
    csp2+tc     ... smallest T-C first
    csp2+dc     ... smallest D-C first (the experimental winner)

plus extras built in this reproduction: ``csp2-generic[+h]`` (encoding #2
on the generic engine), ``csp2-local`` (min-conflicts), ``sat[+amo]``
(CNF + CDCL), the simulation baselines ``edf`` / ``fp[+h]``, the racing
meta-solver ``portfolio:NAME,NAME,...`` and the screening-cascade
meta-solver ``screen[+NAME]`` (certified polynomial-time tests first,
the wrapped engine only on abstention).

The front door is :mod:`repro.solvers.problem`: build a :class:`Problem`,
get a :class:`SolveReport` from :func:`solve` (one call) or
:func:`solve_iter` (streaming matrix).  The PR 2 deprecation shims
(``make_solver``, ``MgrtsResult``) were removed in PR 5 after warning
for three releases; :func:`create_solver` and :class:`SolveReport` are
their drop-in successors.
"""

from repro.solvers.base import Feasibility, SolveResult, SolverStats
from repro.solvers.spec import SolverSpec
from repro.solvers.registry import (
    SolverInfo,
    available_solvers,
    create_solver,
    is_solver_name,
    iter_solver_info,
    register_solver,
    solver_info,
)
from repro.solvers.problem import (
    Problem,
    SolveReport,
    solve_iter,
    solve_problem,
)
from repro.solvers.api import solve
from repro.solvers.min_processors import MinProcessorsResult, find_min_processors

__all__ = [
    "Feasibility",
    "SolveResult",
    "SolverStats",
    "SolverSpec",
    "SolverInfo",
    "available_solvers",
    "create_solver",
    "is_solver_name",
    "iter_solver_info",
    "register_solver",
    "solver_info",
    "Problem",
    "SolveReport",
    "solve",
    "solve_iter",
    "solve_problem",
    "MinProcessorsResult",
    "find_min_processors",
]
