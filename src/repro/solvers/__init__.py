"""Solver facade: every way this library can answer an MGRTS instance.

All solvers share one result type (:class:`SolveResult`) and one calling
convention: ``solver.solve(time_limit=..) -> SolveResult``.  The registry
exposes the paper's six experimental configurations by name::

    csp1        CSP1 on the generic engine (the paper's Choco run)
    csp2        dedicated chronological solver, task-index value order
    csp2+rm     ... Rate Monotonic value order
    csp2+dm     ... Deadline Monotonic
    csp2+tc     ... smallest T-C first
    csp2+dc     ... smallest D-C first (the experimental winner)

plus extras built in this reproduction: ``csp2-generic[+h]`` (encoding #2
on the generic engine), ``sat`` (CNF + CDCL), and the baselines under
:mod:`repro.baselines`.

Use :func:`repro.solvers.api.solve` (re-exported as ``repro.solve``) for
the one-call interface that also handles arbitrary-deadline cloning.
"""

from repro.solvers.base import Feasibility, SolveResult, SolverStats
from repro.solvers.registry import available_solvers, make_solver
from repro.solvers.api import solve
from repro.solvers.min_processors import MinProcessorsResult, find_min_processors

__all__ = [
    "Feasibility",
    "SolveResult",
    "SolverStats",
    "available_solvers",
    "make_solver",
    "solve",
    "MinProcessorsResult",
    "find_min_processors",
]
