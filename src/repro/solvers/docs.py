"""docs/SOLVERS.md, generated from the registry.

The solver table used to be hand-maintained and drifted whenever a
solver was added or its metadata changed.  Now the registry is the
single source of truth: :func:`render_solvers_md` renders the document
from :func:`repro.solvers.registry.iter_solver_info`, and
``scripts/solvers_md.py`` (wired into ``make solvers-check`` and CI)
fails the build when the checked-in file differs from the rendering.

Only genuinely hand-written prose (the intro, the related-entry-points
section, the rules of thumb) lives here as literals; every solver row,
capability flag, platform column and option list comes from the
``@register_solver`` declarations next to the solver code.
"""

from __future__ import annotations

from repro.solvers.registry import SolverInfo, iter_solver_info

__all__ = ["render_solvers_md"]

_PLATFORM_KINDS = ("identical", "uniform", "heterogeneous")

_INTRO = """\
# Choosing a solver

<!-- GENERATED FILE - do not edit by hand.
     Source: the @register_solver declarations (see repro/solvers/docs.py).
     Regenerate: python scripts/solvers_md.py --write
     CI guard:   make solvers-check -->

Every name below is accepted by `repro.solve(..., solver=NAME)`,
`repro.create_solver(NAME, ...)`, the CLI's `--solver`, and the
`batch --solvers` list. `repro.available_solvers()` returns the
canonical list at runtime, and `repro-mgrts solvers` prints this
catalog from the live registry.

Two meta names compose any of them. `portfolio:csp2+dc,sat` races the
members concurrently in worker processes and keeps the first definitive
answer (an incomplete member such as `csp2-local` can win a FEASIBLE
race but never decides INFEASIBLE). `screen+csp2+dc` runs the certified
polynomial-time screening cascade first — utilization and density
bounds, interval-load arguments, packing and simulation witnesses — and
only hands the instance to the wrapped engine when every test abstains;
the answer's `decided_by` records which test or engine settled it.

## Registered solvers
"""

_OUTRO = """\
Arbitrary-deadline systems are handled one layer up:
`repro.solve` clones them into constrained-deadline systems first
(Section VI-B) and merges the schedule back for display.

## Related entry points (not registry names)

* `repro.analysis.run_cascade` — the bare screening cascade behind the
  `screen` name: an ordered list of certificates with per-test timings;
  CLI: `repro-mgrts analyze`.
* `repro.solvers.min_processors.find_min_processors` — incrementally
  searches the smallest sufficient `m` (Section VIII), starting from the
  analysis lower bound and letting certificates exclude hopeless counts
  without search; CLI: `solve --min-processors`.
* `repro.baselines.partitioned` — partitioned scheduling (first-fit and
  exact partitioning), the paradigm the paper argues against (Section I).
* `repro.baselines.simulator` + `priorities` — the machinery behind the
  registered `edf`/`fp` names, usable directly for richer simulation
  results.
* `repro.baselines.priority_search` — exhaustive/heuristic/Audsley
  search over priority assignments (the paper's future-work item).

## Rules of thumb

1. Want an answer? `csp2+dc`.
2. Many instances? `screen+csp2+dc` — the cascade decides most of them
   in microseconds-to-milliseconds and only the hard core reaches the
   exact engine (see `benchmarks/BENCH_analysis.full.json`).
3. Mixed or unknown workload? `portfolio:csp2+dc,sat,csp2-local` — each
   instance finishes at about the speed of its best member.
4. Want a proof the paper's comparisons hold on your machine?
   `python -m repro.cli experiment table1`.
5. Huge and probably feasible? `csp2-local`, fall back to `csp2+dc`.
6. Doubt a verdict? Cross-check with `sat` (identical platforms), or
   run `repro-mgrts analyze` for a certificate-level second opinion.
7. Publishing numbers? Run the matrix through `repro batch --jobs N`
   with a `--cache-dir` so re-runs are free.
"""


def _escape(text: str) -> str:
    return text.replace("|", "\\|")


def _family_rows(info: SolverInfo) -> list[tuple[str, str]]:
    """(name, description) rows for one family, base first."""
    rows = [(info.base, info.description)]
    rows += [(f"{info.base}+{s}", desc) for s, desc in info.suffixes.items()]
    return rows


def render_solvers_md() -> str:
    """The full docs/SOLVERS.md content, derived from the registry."""
    infos = [i for i in iter_solver_info() if i.advertise]
    lines: list[str] = [_INTRO]
    lines.append("| Name | What it is | Paper section | Pick it when |")
    lines.append("|---|---|---|---|")
    for info in infos:
        for name, desc in _family_rows(info):
            lines.append(
                f"| `{name}` | {_escape(desc)} | {_escape(info.paper_section) or '—'} "
                f"| {_escape(info.pick_when) or '—'} |"
            )
    lines.append("")
    lines.append("## Capabilities and platform support")
    lines.append("")
    lines.append(
        "| Family | proves infeasibility | exact (complete search) | "
        + " | ".join(_PLATFORM_KINDS)
        + " | options |"
    )
    lines.append("|---|---|---|" + "---|" * len(_PLATFORM_KINDS) + "---|")
    for info in infos:
        marks = [
            "yes" if kind in info.platforms else "no" for kind in _PLATFORM_KINDS
        ]
        options = ", ".join(f"`{o}=`" for o in info.options) or "—"
        lines.append(
            f"| `{info.base}*` "
            f"| {'yes' if info.proves_infeasibility else 'no'} "
            f"| {'yes' if info.is_exact else 'no'} "
            f"| " + " | ".join(marks) + f" | {options} |"
        )
    lines.append("")
    lines.append(
        "Suffix rules: `csp1+X` picks the variable heuristic, `csp2*+X` and "
        "`fp+X` the task-ordering heuristic, `sat+X` the at-most-one "
        "encoding, and `screen+NAME` wraps any other name (portfolios "
        "included) behind the screening cascade.  Unknown keyword options "
        "raise a `ValueError` naming the accepted ones (no silent "
        "swallowing)."
    )
    lines.append("")
    lines.append(_OUTRO)
    return "\n".join(lines)
