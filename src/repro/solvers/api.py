"""One-call front door: ``repro.solve(system, m=2)``.

Since the API redesign this module is a thin client of
:mod:`repro.solvers.problem`: :func:`solve` builds one
:class:`~repro.solvers.problem.Problem` and returns the
:class:`~repro.solvers.problem.SolveReport` produced by the shared
engine (cloning, registry lookup, budget accounting, validation all live
there).  ``MgrtsResult`` — the pre-redesign result type — remains as an
importable deprecation shim; ``SolveReport`` exposes a superset of its
surface, so downstream attribute access keeps working unchanged.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass

import numpy as np

from repro.model.platform import Platform
from repro.model.system import TaskSystem
from repro.model.transform import CloneMap
from repro.schedule.schedule import IDLE, Schedule
from repro.solvers.base import Feasibility, SolveResult
from repro.solvers.problem import Problem, SolveReport, solve_problem

__all__ = ["solve", "MgrtsResult", "merge_clone_schedule"]


def merge_clone_schedule(schedule: Schedule, clone_map: CloneMap) -> Schedule:
    """Relabel a cloned system's schedule with original task indices.

    The result is an **unvalidated display schedule** over the original
    (possibly arbitrary-deadline) system: two clones of one task may
    legitimately run in parallel, which the C1-C4 validator would reject,
    so never pass the returned schedule to
    :func:`repro.schedule.validate.validate` — validation happens on the
    cloned schedule, before merging.
    """
    original = clone_map.original
    table = np.full(schedule.table.shape, IDLE, dtype=np.int32)
    for c, origin in enumerate(clone_map.origin_of):
        table[schedule.table == c] = origin
    return Schedule(original, schedule.platform, table)


@dataclass
class MgrtsResult:
    """Deprecated pre-redesign result type (use
    :class:`~repro.solvers.problem.SolveReport`, which :func:`solve` now
    returns and which carries the same attributes and more)."""

    result: SolveResult
    system: TaskSystem
    cloned_system: TaskSystem
    clone_map: CloneMap

    def __post_init__(self) -> None:
        """Emit the deprecation signal on construction."""
        warnings.warn(
            "MgrtsResult is deprecated; repro.solve() now returns a "
            "SolveReport with the same attributes (plus to_dict/from_dict)",
            DeprecationWarning,
            stacklevel=3,
        )

    @property
    def status(self) -> Feasibility:
        """The underlying solver verdict (feasible/infeasible/unknown)."""
        return self.result.status

    @property
    def is_feasible(self) -> bool:
        """True iff a valid schedule was found within the budget."""
        return self.result.is_feasible

    @property
    def schedule(self) -> Schedule | None:
        """The validated schedule over the (cloned) constrained system."""
        return self.result.schedule

    @property
    def original_schedule(self) -> Schedule | None:
        """Schedule relabeled with the original task indices (for display)."""
        if self.result.schedule is None:
            return None
        if self.clone_map.is_identity:
            return self.result.schedule
        return merge_clone_schedule(self.result.schedule, self.clone_map)

    @property
    def stats(self):
        """Search-effort counters of the underlying run."""
        return self.result.stats


def solve(
    system: TaskSystem,
    platform: Platform | None = None,
    m: int | None = None,
    solver: str = "csp2+dc",
    time_limit: float | None = None,
    node_limit: int | None = None,
    seed: int | None = None,
    check: bool = True,
    **options,
) -> SolveReport:
    """Solve an MGRTS instance end to end.

    Parameters
    ----------
    system:
        Any task system; arbitrary-deadline tasks are cloned automatically.
    platform, m:
        Pass a :class:`Platform`, or just ``m`` for identical processors.
    solver:
        A registry name (default ``csp2+dc``, the paper's best performer);
        ``portfolio:NAME,NAME,...`` races several and keeps the first
        definitive answer.
    time_limit, node_limit:
        Search budget (the paper used 30 s).
    seed:
        Randomized-strategy seed (``csp1``, ``csp2-local``).
    check:
        Validate the returned schedule against C1-C4 (cheap insurance;
        raises if a solver ever produced an invalid schedule).
    options:
        Extra solver-specific flags (``symmetry_breaking=False``, ...);
        unknown names raise ``ValueError`` listing the accepted ones.

    Returns
    -------
    SolveReport
        Status, stats, and (if feasible) the cyclic schedule.
    """
    problem = Problem.of(
        system,
        platform=platform,
        m=m,
        time_limit=time_limit,
        node_limit=node_limit,
        seed=seed,
    )
    return solve_problem(problem, solver, check=check, **options)
