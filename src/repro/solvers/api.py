"""One-call front door: ``repro.solve(system, m=2)``.

Handles the plumbing a downstream user should not have to know about:
arbitrary-deadline systems are cloned (Section VI-B), the solver is looked
up by name, and the resulting schedule is validated before being returned.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.model.platform import Platform
from repro.model.system import TaskSystem
from repro.model.transform import CloneMap, clone_for_arbitrary_deadlines
from repro.schedule.schedule import IDLE, Schedule
from repro.schedule.validate import validate
from repro.solvers.base import Feasibility, SolveResult
from repro.solvers.registry import make_solver

__all__ = ["solve", "MgrtsResult", "merge_clone_schedule"]


def merge_clone_schedule(schedule: Schedule, clone_map: CloneMap) -> Schedule:
    """Relabel a cloned system's schedule with original task indices.

    The result is an **unvalidated display schedule** over the original
    (possibly arbitrary-deadline) system: two clones of one task may
    legitimately run in parallel, which the C1-C4 validator would reject,
    so never pass the returned schedule to
    :func:`repro.schedule.validate.validate` — validation happens on the
    cloned schedule, before merging.
    """
    original = clone_map.original
    table = np.full(schedule.table.shape, IDLE, dtype=np.int32)
    for c, origin in enumerate(clone_map.origin_of):
        table[schedule.table == c] = origin
    return Schedule(original, schedule.platform, table)


@dataclass
class MgrtsResult:
    """Outcome of :func:`solve` on a (possibly arbitrary-deadline) system."""

    result: SolveResult
    system: TaskSystem
    cloned_system: TaskSystem
    clone_map: CloneMap

    @property
    def status(self) -> Feasibility:
        """The underlying solver verdict (feasible/infeasible/unknown)."""
        return self.result.status

    @property
    def is_feasible(self) -> bool:
        """True iff a valid schedule was found within the budget."""
        return self.result.is_feasible

    @property
    def schedule(self) -> Schedule | None:
        """The validated schedule over the (cloned) constrained system."""
        return self.result.schedule

    @property
    def original_schedule(self) -> Schedule | None:
        """Schedule relabeled with the original task indices (for display)."""
        if self.result.schedule is None:
            return None
        if self.clone_map.is_identity:
            return self.result.schedule
        return merge_clone_schedule(self.result.schedule, self.clone_map)

    @property
    def stats(self):
        """Search-effort counters of the underlying run."""
        return self.result.stats


def solve(
    system: TaskSystem,
    platform: Platform | None = None,
    m: int | None = None,
    solver: str = "csp2+dc",
    time_limit: float | None = None,
    node_limit: int | None = None,
    seed: int | None = None,
    check: bool = True,
    **options,
) -> MgrtsResult:
    """Solve an MGRTS instance end to end.

    Parameters
    ----------
    system:
        Any task system; arbitrary-deadline tasks are cloned automatically.
    platform, m:
        Pass a :class:`Platform`, or just ``m`` for identical processors.
    solver:
        A registry name (default ``csp2+dc``, the paper's best performer).
    time_limit, node_limit:
        Search budget (the paper used 30 s).
    seed:
        Randomized-strategy seed (``csp1``).
    check:
        Validate the returned schedule against C1-C4 (cheap insurance;
        raises if a solver ever produced an invalid schedule).
    options:
        Extra solver-specific flags (``symmetry_breaking=False``, ...).

    Returns
    -------
    MgrtsResult
        Status, stats, and (if feasible) the cyclic schedule.
    """
    if platform is None:
        if m is None:
            raise ValueError("pass either platform= or m=")
        platform = Platform.identical(m)
    elif m is not None and m != platform.m:
        raise ValueError(f"conflicting processor counts: m={m}, platform.m={platform.m}")

    cloned, cmap = clone_for_arbitrary_deadlines(system)
    if platform.kind == "heterogeneous" and not cmap.is_identity:
        raise ValueError(
            "heterogeneous rate matrices are indexed by task; expand the "
            "matrix for the cloned system and pass the cloned system directly"
        )
    engine = make_solver(solver, cloned, platform, seed=seed, **options)
    result = engine.solve(time_limit=time_limit, node_limit=node_limit)
    if check and result.schedule is not None:
        validate(result.schedule).raise_if_invalid()
    return MgrtsResult(result=result, system=system, cloned_system=cloned, clone_map=cmap)
