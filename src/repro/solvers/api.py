"""One-call front door: ``repro.solve(system, m=2)``.

Since the API redesign this module is a thin client of
:mod:`repro.solvers.problem`: :func:`solve` builds one
:class:`~repro.solvers.problem.Problem` and returns the
:class:`~repro.solvers.problem.SolveReport` produced by the shared
engine (cloning, registry lookup, budget accounting, validation all live
there).  The pre-redesign ``MgrtsResult`` shim is gone (PR 5):
:class:`~repro.solvers.problem.SolveReport` has carried a superset of
its surface since PR 2, so migration is attribute-compatible.
"""

from __future__ import annotations

import numpy as np

from repro.model.platform import Platform
from repro.model.system import TaskSystem
from repro.model.transform import CloneMap
from repro.schedule.schedule import IDLE, Schedule
from repro.solvers.problem import Problem, SolveReport, solve_problem

__all__ = ["solve", "merge_clone_schedule"]


def merge_clone_schedule(schedule: Schedule, clone_map: CloneMap) -> Schedule:
    """Relabel a cloned system's schedule with original task indices.

    The result is an **unvalidated display schedule** over the original
    (possibly arbitrary-deadline) system: two clones of one task may
    legitimately run in parallel, which the C1-C4 validator would reject,
    so never pass the returned schedule to
    :func:`repro.schedule.validate.validate` — validation happens on the
    cloned schedule, before merging.
    """
    original = clone_map.original
    table = np.full(schedule.table.shape, IDLE, dtype=np.int32)
    for c, origin in enumerate(clone_map.origin_of):
        table[schedule.table == c] = origin
    return Schedule(original, schedule.platform, table)


def solve(
    system: TaskSystem,
    platform: Platform | None = None,
    m: int | None = None,
    solver: str = "csp2+dc",
    time_limit: float | None = None,
    node_limit: int | None = None,
    seed: int | None = None,
    check: bool = True,
    **options,
) -> SolveReport:
    """Solve an MGRTS instance end to end.

    Parameters
    ----------
    system:
        Any task system; arbitrary-deadline tasks are cloned automatically.
    platform, m:
        Pass a :class:`Platform`, or just ``m`` for identical processors.
    solver:
        A registry name (default ``csp2+dc``, the paper's best performer);
        ``portfolio:NAME,NAME,...`` races several and keeps the first
        definitive answer.
    time_limit, node_limit:
        Search budget (the paper used 30 s).
    seed:
        Randomized-strategy seed (``csp1``, ``csp2-local``).
    check:
        Validate the returned schedule against C1-C4 (cheap insurance;
        raises if a solver ever produced an invalid schedule).
    options:
        Extra solver-specific flags (``symmetry_breaking=False``, ...);
        unknown names raise ``ValueError`` listing the accepted ones.

    Returns
    -------
    SolveReport
        Status, stats, and (if feasible) the cyclic schedule.
    """
    problem = Problem.of(
        system,
        platform=platform,
        m=m,
        time_limit=time_limit,
        node_limit=node_limit,
        seed=seed,
    )
    return solve_problem(problem, solver, check=check, **options)
