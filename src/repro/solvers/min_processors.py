"""Incremental search for the smallest sufficient processor count.

Paper, Section VII-E: "It would be interesting to use an algorithm which
incrementally searches for the smallest number of processors m required to
schedule a given set of tasks."  This module is that algorithm, sharpened
by the analysis subsystem: starting from the utilization lower bound
``m_min = max(1, ceil(U))``, try ``m, m+1, ...`` until FEASIBLE, but

* every ``m`` below :func:`repro.analysis.necessary.processor_lower_bound`
  is marked INFEASIBLE outright — the interval-load table (built once,
  it is m-independent) is a proof, no search needed;
* each remaining ``m`` is screened by the certificates the lower bound
  does not subsume: the m-independent ``C > D`` check (evaluated once)
  and the per-m forced-demand argument; a firing certificate proves
  ``m`` hopeless in polynomial time and the exact engine is never
  invoked for it;
* only counts the analysis cannot exclude reach the exact solver.

Exactness guarantees carry along unchanged: every ``m`` answered
INFEASIBLE — by certificate or by search — is a *proof* that ``m`` is not
enough; the first FEASIBLE ``m`` together with those proofs pins the
optimum; any UNKNOWN (overrun) makes the final answer a (reported) upper
bound only.  ``decided_by`` records who settled each count.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.model.platform import Platform
from repro.model.system import TaskSystem
from repro.solvers.base import Feasibility, SolveResult
from repro.solvers.registry import create_solver
from repro.util.timer import Deadline

__all__ = ["MinProcessorsResult", "find_min_processors"]

#: provenance label for counts excluded by the interval-load lower bound
LOWER_BOUND = "analysis:processor-lower-bound"


@dataclass
class MinProcessorsResult:
    """Outcome of the incremental-m search.

    ``m`` is the smallest feasible processor count found (None if the
    search ran out of budget or hit ``max_m`` before any FEASIBLE answer);
    ``exact`` is True when every count below ``m`` was *proven*
    infeasible, i.e. ``m`` is the true optimum rather than an upper bound.
    ``decided_by`` maps each attempted count to what settled it — a
    certificate name for counts the analysis excluded without search,
    the solver name otherwise.
    """

    m: int | None
    exact: bool
    result: SolveResult | None
    #: m -> status for every count attempted, in order
    attempts: dict[int, Feasibility] = field(default_factory=dict)
    #: m -> provenance (certificate test name or solver name)
    decided_by: dict[int, str] = field(default_factory=dict)

    @property
    def found(self) -> bool:
        """Whether any sufficient processor count was found in budget."""
        return self.m is not None


def find_min_processors(
    system: TaskSystem,
    solver: str = "csp2+dc",
    time_limit_per_m: float | None = None,
    total_time_limit: float | None = None,
    max_m: int | None = None,
    use_analysis: bool = True,
    **options,
) -> MinProcessorsResult:
    """Find the minimum identical-processor count for ``system``.

    ``max_m`` defaults to ``n`` (with ``m = n`` every task can have a
    processor to itself at every instant, so only per-task ``C <= D``
    failures can remain infeasible beyond it).  ``use_analysis=False``
    disables the polynomial pre-passes and searches every count exactly
    (the pre-redesign behavior); the answer is the same either way, the
    analysis only removes exact-search invocations that were doomed.
    """
    deadline = Deadline(total_time_limit)
    start = max(1, system.min_processors)
    cap = max_m if max_m is not None else max(start, system.n)
    lower = start
    wcet_cert = None
    if use_analysis:
        from repro.analysis.necessary import (
            forced_demand_certificate,
            processor_lower_bound,
            wcet_slack_certificate,
        )

        # m-independent analysis, computed once: the interval-load table
        # behind the lower bound (interval-load can never fire at
        # m >= lower, by the bound's definition) and the C > D check
        lower = max(start, processor_lower_bound(system))
        cert = wcet_slack_certificate(system, 1)
        wcet_cert = cert if cert.proves_infeasible else None
    attempts: dict[int, Feasibility] = {}
    decided_by: dict[int, str] = {}
    exact = True
    for m in range(start, cap + 1):
        if total_time_limit is not None and deadline.remaining() <= 0:
            return MinProcessorsResult(None, False, None, attempts, decided_by)
        if use_analysis:
            if m < lower:
                # below the interval-load lower bound: proven infeasible
                # without running any certificate or search for this m
                attempts[m] = Feasibility.INFEASIBLE
                decided_by[m] = LOWER_BOUND
                continue
            cert = wcet_cert
            if cert is None:
                forced = forced_demand_certificate(system, m)
                cert = forced if forced.proves_infeasible else None
            if cert is not None:
                attempts[m] = Feasibility.INFEASIBLE
                decided_by[m] = cert.test_name
                continue
        budget = time_limit_per_m
        if total_time_limit is not None:
            remaining = deadline.remaining()
            budget = min(budget, remaining) if budget is not None else remaining
        engine = create_solver(solver, system, Platform.identical(m), **options)
        res = engine.solve(time_limit=budget)
        attempts[m] = res.status
        decided_by[m] = res.decided_by or res.solver_name
        if res.status is Feasibility.FEASIBLE:
            return MinProcessorsResult(m, exact, res, attempts, decided_by)
        if res.status is Feasibility.UNKNOWN:
            exact = False  # this m might have been feasible
    return MinProcessorsResult(None, False, None, attempts, decided_by)
