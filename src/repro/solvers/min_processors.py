"""Incremental search for the smallest sufficient processor count.

Paper, Section VII-E: "It would be interesting to use an algorithm which
incrementally searches for the smallest number of processors m required to
schedule a given set of tasks."  This module is that algorithm: starting
from the utilization lower bound ``m_min = max(1, ceil(U))``, solve with
``m, m+1, ...`` until FEASIBLE, carrying exactness guarantees along:

* every ``m`` answered INFEASIBLE is a *proof* that ``m`` is not enough;
* the first FEASIBLE ``m`` together with those proofs pins the optimum;
* any UNKNOWN (overrun) makes the final answer a (reported) upper bound
  only.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.model.platform import Platform
from repro.model.system import TaskSystem
from repro.solvers.base import Feasibility, SolveResult
from repro.solvers.registry import create_solver
from repro.util.timer import Deadline

__all__ = ["MinProcessorsResult", "find_min_processors"]


@dataclass
class MinProcessorsResult:
    """Outcome of the incremental-m search.

    ``m`` is the smallest feasible processor count found (None if the
    search ran out of budget or hit ``max_m`` before any FEASIBLE answer);
    ``exact`` is True when every count below ``m`` was *proven*
    infeasible, i.e. ``m`` is the true optimum rather than an upper bound.
    """

    m: int | None
    exact: bool
    result: SolveResult | None
    #: m -> status for every count attempted, in order
    attempts: dict[int, Feasibility] = field(default_factory=dict)

    @property
    def found(self) -> bool:
        """Whether any sufficient processor count was found in budget."""
        return self.m is not None


def find_min_processors(
    system: TaskSystem,
    solver: str = "csp2+dc",
    time_limit_per_m: float | None = None,
    total_time_limit: float | None = None,
    max_m: int | None = None,
    **options,
) -> MinProcessorsResult:
    """Find the minimum identical-processor count for ``system``.

    ``max_m`` defaults to ``n`` (with ``m = n`` every task can have a
    processor to itself at every instant, so only per-task ``C <= D``
    failures can remain infeasible beyond it).
    """
    deadline = Deadline(total_time_limit)
    start = max(1, system.min_processors)
    cap = max_m if max_m is not None else max(start, system.n)
    attempts: dict[int, Feasibility] = {}
    exact = True
    for m in range(start, cap + 1):
        budget = time_limit_per_m
        if total_time_limit is not None:
            remaining = deadline.remaining()
            if remaining <= 0:
                return MinProcessorsResult(None, False, None, attempts)
            budget = min(budget, remaining) if budget is not None else remaining
        engine = create_solver(solver, system, Platform.identical(m), **options)
        res = engine.solve(time_limit=budget)
        attempts[m] = res.status
        if res.status is Feasibility.FEASIBLE:
            return MinProcessorsResult(m, exact, res, attempts)
        if res.status is Feasibility.UNKNOWN:
            exact = False  # this m might have been feasible
    return MinProcessorsResult(None, False, None, attempts)
