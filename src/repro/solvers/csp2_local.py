"""Local search over the CSP2 representation (paper future work).

The discussion section proposes "using the same CSP formalizations with
local search algorithms, although they won't be able to prove that a given
instance is infeasible".  This module implements that proposal as a
min-conflicts search over per-slot task selections:

* a *state* is one complete per-slot assignment — for every slot, which
  tasks run (at most ``m``, all available at that slot); conditions C1/C2/
  C3 and the idle-rule hold by construction, so the only violated
  constraint is (9), "exactly C_i units per window";
* the *cost* of a state is the total window deviation
  ``sum_windows |received - C_i|``;
* a *move* toggles one task in one slot (add if capacity remains, else
  swap against a running task), chosen among the moves that most reduce
  cost over a random candidate window (min-conflicts with noise);
* sideways moves escape plateaus, random restarts escape local minima.

The solver returns FEASIBLE with a validated schedule when cost reaches 0
and UNKNOWN otherwise — never INFEASIBLE, exactly the trade-off the paper
states.  Identical platforms only (moves assume unit rates).
"""

from __future__ import annotations

import random

import numpy as np

from repro.model import intervals
from repro.model.platform import Platform
from repro.model.system import TaskSystem
from repro.schedule.schedule import IDLE, Schedule
from repro.solvers.base import Feasibility, SolveResult, SolverStats
from repro.solvers.registry import register_solver
from repro.util.timer import Deadline

__all__ = ["Csp2LocalSearchSolver"]


class Csp2LocalSearchSolver:
    """Min-conflicts local search for MGRTS (identical processors).

    Parameters
    ----------
    seed:
        RNG seed (the search is randomized by nature; fixed seed = fixed
        trajectory).
    max_steps_per_restart:
        Moves before giving up on a trajectory and restarting.
    noise:
        Probability of taking a random (rather than best) move — standard
        min-conflicts noise to escape plateaus.
    """

    name = "csp2-local"

    def __init__(
        self,
        system: TaskSystem,
        platform: Platform,
        seed: int | None = 0,
        max_steps_per_restart: int = 2000,
        noise: float = 0.08,
    ) -> None:
        if not system.is_constrained:
            raise ValueError(
                "local search needs a constrained-deadline system; apply "
                "clone_for_arbitrary_deadlines() first"
            )
        if not platform.is_identical:
            raise ValueError("local search supports identical platforms only")
        if not 0.0 <= noise <= 1.0:
            raise ValueError(f"noise must be in [0, 1], got {noise}")
        self.system = system
        self.platform = platform
        self.seed = seed
        self.max_steps_per_restart = max_steps_per_restart
        self.noise = noise

        T = system.hyperperiod
        self._T = T
        self._m = platform.m
        # available tasks per slot and the (task, job) window id per slot
        self._avail: list[list[int]] = [[] for _ in range(T)]
        self._job_at: list[dict[int, int]] = [dict() for _ in range(T)]
        for i in range(system.n):
            if system[i].wcet == 0:
                continue
            for t in system.task_slots(i):
                job = intervals.active_job(system[i], T, t)
                self._avail[t].append(i)
                self._job_at[t][i] = job
        # window targets, flattened ids (and the reverse map for O(1) moves)
        self._window_id: dict[tuple[int, int], int] = {}
        self._window_key: list[tuple[int, int]] = []
        self._targets: list[int] = []
        for i in range(system.n):
            for job in range(system.n_jobs(i)):
                self._window_id[(i, job)] = len(self._targets)
                self._window_key.append((i, job))
                self._targets.append(system[i].wcet)

    # -- state helpers -----------------------------------------------------------
    def _initial_state(self, rng: random.Random) -> list[set[int]]:
        """Greedy randomized construction: fill each slot up to m tasks,
        preferring tasks whose windows still need units."""
        received = [0] * len(self._targets)
        state: list[set[int]] = []
        for t in range(self._T):
            cands = list(self._avail[t])
            rng.shuffle(cands)
            cands.sort(
                key=lambda i: self._targets[self._window_id[(i, self._job_at[t][i])]]
                - received[self._window_id[(i, self._job_at[t][i])]],
                reverse=True,
            )
            chosen = set()
            for i in cands:
                if len(chosen) >= self._m:
                    break
                wid = self._window_id[(i, self._job_at[t][i])]
                if received[wid] < self._targets[wid]:
                    chosen.add(i)
                    received[wid] += 1
            state.append(chosen)
        return state

    def _cost_and_received(self, state: list[set[int]]) -> tuple[int, list[int]]:
        received = [0] * len(self._targets)
        for t, chosen in enumerate(state):
            for i in chosen:
                received[self._window_id[(i, self._job_at[t][i])]] += 1
        cost = sum(abs(r - c) for r, c in zip(received, self._targets))
        return cost, received

    # -- main loop -------------------------------------------------------------
    def solve(
        self, time_limit: float | None = None, node_limit: int | None = None
    ) -> SolveResult:
        """Min-conflicts search with restarts; never proves infeasibility.

        Returns FEASIBLE if a zero-cost assignment is reached within the
        budgets, otherwise UNKNOWN (``node_limit`` counts moves).
        """
        deadline = Deadline(time_limit)
        rng = random.Random(self.seed)
        stats = SolverStats()
        restarts = 0

        def result(status: Feasibility, schedule=None) -> SolveResult:
            stats.elapsed = deadline.elapsed()
            stats.extra["restarts"] = restarts
            return SolveResult(
                status=status, schedule=schedule, stats=stats, solver_name=self.name
            )

        # windows that cannot be filled even in principle: bail out early
        # (this is the only "reasoning" a local search gets for free)
        for i in range(self.system.n):
            if self.system[i].wcet > self.system[i].deadline:
                return result(Feasibility.UNKNOWN)

        while not deadline.expired():
            if node_limit is not None and stats.nodes >= node_limit:
                break
            state = self._initial_state(rng)
            cost, received = self._cost_and_received(state)
            steps = 0
            while cost > 0 and steps < self.max_steps_per_restart:
                if deadline.expired() or (
                    node_limit is not None and stats.nodes >= node_limit
                ):
                    return result(Feasibility.UNKNOWN)
                steps += 1
                stats.nodes += 1
                if not self._step(state, received, rng):
                    break  # no move available at all (degenerate instance)
                # `received` is maintained incrementally by _step
                cost = sum(abs(r - c) for r, c in zip(received, self._targets))
            if cost == 0:
                schedule = self._build(state)
                return result(Feasibility.FEASIBLE, schedule)
            restarts += 1
            stats.fails += 1
        return result(Feasibility.UNKNOWN)

    def _step(
        self, state: list[set[int]], received: list[int], rng: random.Random
    ) -> bool:
        """One min-conflicts move; returns False if no move exists."""
        # pick a violated window, biased towards under-filled ones
        violated = [
            wid
            for wid, (r, c) in enumerate(zip(received, self._targets))
            if r != c
        ]
        if not violated:
            return True
        wid = rng.choice(violated)
        task, job = self._window_key[wid]
        slots = intervals.window_slots(self.system[task], self._T, job)
        deficit = self._targets[wid] - received[wid]

        if deficit > 0:
            # add a unit of `task` somewhere in the window
            candidates = [t for t in slots if task not in state[t]]
            rng.shuffle(candidates)
            for t in candidates:
                if len(state[t]) < self._m:
                    state[t].add(task)
                    received[wid] += 1
                    return True
            # window full everywhere: evict the most over-filled co-runner
            best: tuple[int, int] | None = None
            best_gain = -(10**9)
            for t in candidates:
                for other in state[t]:
                    owid = self._window_id[(other, self._job_at[t][other])]
                    gain = received[owid] - self._targets[owid]
                    if gain > best_gain or (
                        gain == best_gain and rng.random() < 0.5
                    ):
                        best_gain = gain
                        best = (t, other)
            if best is None:
                return False
            if rng.random() < self.noise:
                t = rng.choice(candidates)
                other = rng.choice(sorted(state[t]))
                best = (t, other)
            t, other = best
            owid = self._window_id[(other, self._job_at[t][other])]
            state[t].discard(other)
            received[owid] -= 1
            state[t].add(task)
            received[wid] += 1
            return True

        # over-filled: drop a unit from a random slot of the window
        running = [t for t in slots if task in state[t]]
        if not running:
            return False
        t = rng.choice(running)
        state[t].discard(task)
        received[wid] -= 1
        return True

    def _build(self, state: list[set[int]]) -> Schedule:
        table = np.full((self._m, self._T), IDLE, dtype=np.int32)
        for t, chosen in enumerate(state):
            for pos, i in enumerate(sorted(chosen)):
                table[pos, t] = i
        return Schedule(self.system, self.platform, table)


@register_solver(
    "csp2-local",
    description=(
        "Min-conflicts local search over per-slot task selections, with "
        "noise, sideways moves and random restarts"
    ),
    paper_section="VIII (future work)",
    pick_when=(
        "Large feasible instances where a quick schedule beats a proof; "
        "never proves infeasibility"
    ),
    capabilities=(),
    suffixes={},
    options=("max_steps_per_restart", "noise"),
    platforms=("identical",),
)
def _build_csp2_local(system, platform, spec, seed, **options):
    """Registry factory: ``csp2-local`` (seed fixes the trajectory)."""
    return Csp2LocalSearchSolver(
        system, platform, seed=seed if seed is not None else 0, **options
    )
