"""The paper's task value-ordering heuristics (Section V-C-2).

Four orderings over tasks, each "smallest key first":

* ``rm``  — Rate Monotonic: smallest period ``T_i``;
* ``dm``  — Deadline Monotonic: smallest deadline ``D_i``;
* ``tc``  — smallest ``T_i - C_i`` (slack);
* ``dc``  — smallest ``D_i - C_i`` (laxity) — the experimental winner
  (Tables I and IV use CSP2+(D-C) as the reference solver).

``None`` means plain task-index order (the paper's unadorned "CSP2"
column).  Ties always break by task index, which keeps every ordering
deterministic.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.model.system import TaskSystem
from repro.model.task import Task

__all__ = ["HEURISTICS", "task_order", "heuristic_key"]

#: name -> key function on Task (smaller = higher priority)
HEURISTICS: dict[str, Callable[[Task], int]] = {
    "rm": lambda t: t.period,
    "dm": lambda t: t.deadline,
    "tc": lambda t: t.slack,
    "dc": lambda t: t.laxity,
}

#: accepted aliases (paper spelling with parentheses/dashes)
_ALIASES = {
    "t-c": "tc",
    "(t-c)": "tc",
    "d-c": "dc",
    "(d-c)": "dc",
    "none": None,
}


def _canon(name: str | None) -> str | None:
    if name is None:
        return None
    key = name.strip().lower()
    key = _ALIASES.get(key, key)
    if key is not None and key not in HEURISTICS:
        raise ValueError(
            f"unknown task heuristic {name!r}; expected one of "
            f"{sorted(HEURISTICS)} (aliases: {sorted(_ALIASES)}) or None"
        )
    return key


def heuristic_key(name: str | None) -> Callable[[Task], int] | None:
    """The key function for a (possibly aliased) heuristic name."""
    key = _canon(name)
    return None if key is None else HEURISTICS[key]


def task_order(system: TaskSystem, heuristic: str | None) -> list[int]:
    """Task indices sorted by the heuristic, best (try-first) first."""
    key = heuristic_key(heuristic)
    ids = list(range(system.n))
    if key is None:
        return ids
    return sorted(ids, key=lambda i: (key(system[i]), i))
