"""The paper's dedicated CSP2 search (Section V-C), reimplemented.

Chronological backtracking: decisions advance slot by slot (``t = 0..T-1``);
within a slot the search picks *which tasks run*.  The paper's three search
rules are all here:

1. **Variable ordering** — time first, then processor id (Section V-C-1).
2. **Value ordering** — candidate tasks tried in RM / DM / (T-C) / (D-C)
   order, or task-index order for plain CSP2 (Section V-C-2).
3. **Added rules** (Section V-C-3):
   * *idle rule*: a processor idles only when no available task remains —
     sound on identical processors by an exchange argument (docs/
     ARCHITECTURE.md, "Design notes"), so each slot schedules exactly
     ``min(m, #available)`` tasks;
   * *symmetry breaking* (10): per slot only task *sets* are enumerated
     (ascending on ascending processor ids), dividing the branching by up
     to ``m!``.

On top of these, two prunings:

* *demand pruning* (on by default): a window with ``rem`` units left and
  ``a`` scan-slots left (including the current one) is dead when
  ``rem > a``, and *forces* its task into the current slot when
  ``rem == a`` — the "most constrained first" grouping of Section III-B;
  with it off, only the window-end exactness check (constraint (9) itself)
  remains.
* *energetic pruning* (off by default, an extension): total remaining
  demand must fit in ``m * (T - t)`` remaining processor-slots.

Heterogeneous/uniform platforms (Section VI-A) switch to per-processor
decisions: processors are visited least-capable-first (quality measure
``Q(P_j)``), value order prefers tasks runnable on few processors, the
idle rule is dropped (idling can beat running on a slow processor, so the
exchange argument fails), and symmetry rule (13) applies within maximal
groups of identical processors only.

All per-slot state (active window, remaining slots) is computed in O(1)
from the task parameters; remaining demands live in a sparse dict — so an
n=256, T=360360 Table IV instance costs memory proportional to the slots
actually *visited*, not to ``sum_i T/T_i`` windows.
"""

from __future__ import annotations

from itertools import combinations, permutations

import numpy as np

from repro.model.platform import Platform
from repro.model.system import TaskSystem
from repro.schedule.schedule import IDLE, Schedule
from repro.solvers.base import Feasibility, SolveResult, SolverStats
from repro.solvers.ordering import task_order
from repro.solvers.registry import EXACT, PROVES_INFEASIBILITY, register_solver
from repro.util.timer import Deadline

__all__ = ["Csp2DedicatedSolver"]


class _Frame:
    """One search node (a slot, or a (slot, processor) pair)."""

    __slots__ = ("t", "j", "pos", "choices", "applied", "chosen")

    def __init__(self, t: int, j: int, pos: int, choices) -> None:
        self.t = t
        self.j = j          # actual processor id (general mode)
        self.pos = pos      # position in the processor visit order
        self.choices = choices
        self.applied: list | None = None  # undo log of the active choice
        self.chosen = None


class Csp2DedicatedSolver:
    """Hand-rolled chronological solver for CSP2 (identical & heterogeneous).

    Parameters
    ----------
    heuristic:
        None (task-index order), ``rm``, ``dm``, ``tc`` or ``dc``.
    symmetry_breaking:
        Paper rule (10)/(13).  Turning it off enumerates task *tuples*
        instead of sets on identical platforms (ablation).
    idle_rule:
        Paper's "no idle while work is available" rule (identical
        platforms only; ignored otherwise).
    demand_pruning:
        Window lookahead ``rem <= slots_left`` with forced tasks.
    energetic_pruning:
        Aggregate capacity check (extension, default off).
    """

    def __init__(
        self,
        system: TaskSystem,
        platform: Platform,
        heuristic: str | None = None,
        symmetry_breaking: bool = True,
        idle_rule: bool = True,
        demand_pruning: bool = True,
        energetic_pruning: bool = False,
    ) -> None:
        if not system.is_constrained:
            raise ValueError(
                "the dedicated CSP2 solver needs a constrained-deadline system; "
                "apply clone_for_arbitrary_deadlines() first (Section VI-B)"
            )
        self.system = system
        self.platform = platform
        self.heuristic = heuristic
        self.symmetry_breaking = symmetry_breaking
        self.idle_rule = idle_rule
        self.demand_pruning = demand_pruning
        self.energetic_pruning = energetic_pruning
        self.name = f"csp2{'+' + heuristic if heuristic else ''}"

        n = system.n
        self._T = system.hyperperiod
        self._m = platform.m
        self._phase = [t.phase for t in system]
        self._period = [t.period for t in system]
        self._deadline = [t.deadline for t in system]
        self._wcet = [t.wcet for t in system]
        # heuristic rank: lower = try first
        order = task_order(system, heuristic)
        self._rank = [0] * n
        for pos, i in enumerate(order):
            self._rank[i] = pos
        self._rates = platform.rate_matrix(n)
        self._max_rate = [int(r) for r in self._rates.max(axis=1)]
        #: loose per-slot platform capacity for the energetic check
        self._slot_capacity = int(self._rates.max(axis=0).sum())
        self._identical = platform.is_identical
        if not self._identical:
            # processor visit order: least capable first, groups adjacent
            quality = platform.quality(system)
            self._proc_order = sorted(
                range(self._m),
                key=lambda j: (quality[j], self._rates[:, j].tobytes(), j),
            )
            # previous processor in visit order iff identical rate column
            self._same_as_prev = [False] * self._m
            for pos in range(1, self._m):
                a, b = self._proc_order[pos - 1], self._proc_order[pos]
                self._same_as_prev[b] = bool(
                    np.array_equal(self._rates[:, a], self._rates[:, b])
                )
            # tasks runnable on few processors get priority (Section VI-A)
            eligible_count = (self._rates > 0).sum(axis=1)
            self._rank = [
                (int(eligible_count[i]), self._rank[i]) for i in range(n)
            ]

    # -- O(1) window helpers ----------------------------------------------------
    def _active_job(self, i: int, t: int) -> int | None:
        delta = (t - self._phase[i]) % self._T
        job, within = divmod(delta, self._period[i])
        return job if within < self._deadline[i] else None

    def _slots_left(self, i: int, job: int, t: int) -> int:
        """Scan-order window slots of (i, job) at position >= t (inclusive)."""
        T = self._T
        r = self._phase[i] + job * self._period[i]
        end = r + self._deadline[i] - 1
        slot = t - 1  # count slots strictly after t-1
        count = 0
        if end < T:
            if slot < end:
                count = end - max(slot, r - 1)
        else:
            tail_end = end - T
            if slot < T - 1:
                count += (T - 1) - max(slot, r - 1)
            if slot < tail_end:
                count += tail_end - slot
        return count

    # -- public API -----------------------------------------------------------
    def solve(
        self, time_limit: float | None = None, node_limit: int | None = None
    ) -> SolveResult:
        """Chronological slot-by-slot search (Section V) under the budgets.

        Returns FEASIBLE with a validated cyclic schedule, INFEASIBLE if
        the space is exhausted, or UNKNOWN (the paper's overrun) when a
        budget expires first.
        """
        deadline = Deadline(time_limit)
        stats = SolverStats()

        def result(status: Feasibility, schedule: Schedule | None = None) -> SolveResult:
            stats.elapsed = deadline.elapsed()
            return SolveResult(
                status=status, schedule=schedule, stats=stats, solver_name=self.name
            )

        # cheap necessary conditions (identical: one unit per slot max)
        for i in range(self.system.n):
            if self._wcet[i] > self._deadline[i] * self._max_rate[i]:
                return result(Feasibility.INFEASIBLE)

        if self._identical:
            return self._search_identical(deadline, stats, node_limit, result)
        return self._search_general(deadline, stats, node_limit, result)

    # -- identical platforms: one frame per slot, choices are task sets --------
    def _slot_candidates(self, t: int, dem: dict) -> tuple[list[int], list[int]] | None:
        """(required, optional) candidate tasks at slot ``t``; None = dead end."""
        required: list[int] = []
        optional: list[int] = []
        wcet = self._wcet
        for i in range(self.system.n):
            job = self._active_job(i, t)
            if job is None:
                continue
            rem = dem.get((i, job), wcet[i])
            if rem == 0:
                continue
            left = self._slots_left(i, job, t)  # includes slot t
            if self.demand_pruning:
                if rem > left:
                    return None
                (required if rem == left else optional).append(i)
            else:
                # only window-end exactness (constraint (9) itself)
                if left == 1:
                    if rem > 1:
                        return None
                    required.append(i)
                else:
                    optional.append(i)
        return required, optional

    def _slot_choices(self, required: list[int], optional: list[int]):
        """Iterator over per-slot task selections (tuples, processor-ordered)."""
        m = self._m
        if len(required) > m:
            return iter(())
        key = self._rank.__getitem__
        required = sorted(required, key=key)
        optional = sorted(optional, key=key)
        free = m - len(required)

        def subsets():
            if self.idle_rule:
                take = min(free, len(optional))
                sizes = [take]
            else:
                sizes = range(min(free, len(optional)), -1, -1)
            for size in sizes:
                for combo in combinations(optional, size):
                    yield tuple(sorted(required + list(combo)))

        if self.symmetry_breaking:
            return subsets()
        return (perm for s in subsets() for perm in permutations(s))

    def _search_identical(self, deadline, stats, node_limit, result) -> SolveResult:
        T = self._T
        m = self._m
        dem: dict[tuple[int, int], int] = {}
        wcet = self._wcet
        total_rem = self.system.total_demand()

        def expand(t: int) -> _Frame | None:
            if self.energetic_pruning and total_rem > m * (T - t):
                return None
            cands = self._slot_candidates(t, dem)
            if cands is None:
                return None
            return _Frame(t, 0, 0, self._slot_choices(*cands))

        root = expand(0)
        if root is None:
            return result(Feasibility.INFEASIBLE)
        frames = [root]
        check_tick = 0
        while frames:
            check_tick += 1
            if check_tick >= 64:
                check_tick = 0
                if deadline.expired() or (
                    node_limit is not None and stats.nodes >= node_limit
                ):
                    return result(Feasibility.UNKNOWN)
            f = frames[-1]
            if f.applied is not None:
                for key, old in f.applied:
                    dem[key] = old
                total_rem += len(f.applied)
                f.applied = None
            choice = next(f.choices, None)
            if choice is None:
                frames.pop()
                continue
            stats.nodes += 1
            if len(frames) > stats.max_depth:
                stats.max_depth = len(frames)
            undo = []
            for i in choice:
                job = self._active_job(i, f.t)
                key = (i, job)
                rem = dem.get(key, wcet[i])
                undo.append((key, rem))
                dem[key] = rem - 1
            total_rem -= len(undo)
            f.applied = undo
            f.chosen = choice
            t_next = f.t + 1
            if t_next == T:
                return result(Feasibility.FEASIBLE, self._build_identical(frames))
            nxt = expand(t_next)
            if nxt is None:
                stats.fails += 1
                continue
            frames.append(nxt)
        return result(Feasibility.INFEASIBLE)

    def _build_identical(self, frames: list[_Frame]) -> Schedule:
        table = np.full((self._m, self._T), IDLE, dtype=np.int32)
        for f in frames:
            for pos, i in enumerate(f.chosen):
                table[pos, f.t] = i
        return Schedule(self.system, self.platform, table)

    @staticmethod
    def _restore(dem: dict, f: _Frame) -> int:
        """Undo a frame's applied choice; returns the demand units restored."""
        restored = 0
        for key, old in f.applied:
            restored += old - dem[key]
            dem[key] = old
        f.applied = None
        return restored

    # -- uniform/heterogeneous: one frame per (slot, processor) ----------------
    def _proc_candidates(
        self, t: int, j: int, dem: dict, running: set[int], prev_val: int | None
    ) -> list[int]:
        """Ordered values for processor ``j`` at slot ``t`` (idle == n)."""
        n = self.system.n
        wcet = self._wcet
        rates = self._rates
        cands = []
        for i in range(n):
            if i in running:
                continue
            rate = int(rates[i, j])
            if rate == 0:
                continue
            job = self._active_job(i, t)
            if job is None:
                continue
            rem = dem.get((i, job), wcet[i])
            if rem == 0 or rate > rem:  # exactness: never overshoot
                continue
            cands.append(i)
        cands.sort(key=self._rank.__getitem__)
        # symmetry rule (13): within an identical group, ascending task ids
        # (idle ranks last); prev_val == n means the previous proc idled.
        if prev_val is not None:
            if prev_val >= n:
                cands = []
            else:
                cands = [i for i in cands if i > prev_val]
        cands.append(n)  # idle, always tried last (no idle rule here)
        return cands

    def _slot_entry_ok(self, t: int, dem: dict) -> bool:
        """Pruning checks when the search reaches the start of slot ``t``."""
        wcet = self._wcet
        max_rate = self._max_rate
        for i in range(self.system.n):
            job = self._active_job(i, t)
            # window that ended at t-1 must be exactly complete
            if t > 0:
                prev_job = self._active_job(i, t - 1)
                if (
                    prev_job is not None
                    and self._slots_left(i, prev_job, t - 1) == 1
                    and dem.get((i, prev_job), wcet[i]) != 0
                ):
                    return False
            if job is None:
                continue
            rem = dem.get((i, job), wcet[i])
            if rem == 0:
                continue
            if self.demand_pruning:
                left = self._slots_left(i, job, t)
                if rem > left * max_rate[i]:
                    return False
        return True

    def _search_general(self, deadline, stats, node_limit, result) -> SolveResult:
        T = self._T
        m = self._m
        n = self.system.n
        dem: dict[tuple[int, int], int] = {}
        wcet = self._wcet
        rates = self._rates
        proc_order = self._proc_order
        frames: list[_Frame] = []
        total_rem = self.system.total_demand()

        def expand(t: int, pos: int) -> _Frame | None:
            if pos == 0:
                if not self._slot_entry_ok(t, dem):
                    return None
                if self.energetic_pruning and total_rem > self._slot_capacity * (T - t):
                    return None
            j = proc_order[pos]
            running = set()
            for f in reversed(frames):
                if f.t != t:
                    break
                if f.chosen is not None and f.chosen < n:
                    running.add(f.chosen)
            prev_val: int | None = None
            if self.symmetry_breaking and pos > 0 and self._same_as_prev[j]:
                prev_val = frames[-1].chosen
            cands = self._proc_candidates(t, j, dem, running, prev_val)
            return _Frame(t, j, pos, iter(cands))

        root = expand(0, 0)
        if root is None:
            return result(Feasibility.INFEASIBLE)
        frames.append(root)
        check_tick = 0
        while frames:
            check_tick += 1
            if check_tick >= 64:
                check_tick = 0
                if deadline.expired() or (
                    node_limit is not None and stats.nodes >= node_limit
                ):
                    return result(Feasibility.UNKNOWN)
            f = frames[-1]
            if f.applied is not None:
                total_rem += self._restore(dem, f)
                f.chosen = None
            val = next(f.choices, None)
            if val is None:
                frames.pop()
                continue
            stats.nodes += 1
            if len(frames) > stats.max_depth:
                stats.max_depth = len(frames)
            f.chosen = val
            f.applied = []
            if val < n:
                job = self._active_job(val, f.t)
                key = (val, job)
                rem = dem.get(key, wcet[val])
                f.applied.append((key, rem))
                rate = int(rates[val, f.j])
                dem[key] = rem - rate
                total_rem -= rate
            # advance to the next processor, or the next slot
            if f.pos + 1 < m:
                nxt = expand(f.t, f.pos + 1)
            elif f.t + 1 < T:
                nxt = expand(f.t + 1, 0)
            else:
                # all slots assigned: windows ending at T-1 must be complete
                # (earlier windows were checked at their own end slot)
                if self._final_ok(dem):
                    return result(Feasibility.FEASIBLE, self._build_general(frames))
                stats.fails += 1
                continue
            if nxt is None:
                stats.fails += 1
                continue
            frames.append(nxt)
        return result(Feasibility.INFEASIBLE)

    def _final_ok(self, dem: dict) -> bool:
        """After slot T-1: every window ending at T-1 must be complete.

        Windows ending earlier were checked at their end slot; combined
        with per-window accounting this means all demand is met.
        """
        wcet = self._wcet
        t = self._T - 1
        for i in range(self.system.n):
            job = self._active_job(i, t)
            if (
                job is not None
                and self._slots_left(i, job, t) == 1
                and dem.get((i, job), wcet[i]) != 0
            ):
                return False
        return True

    def _build_general(self, frames: list[_Frame]) -> Schedule:
        n = self.system.n
        table = np.full((self._m, self._T), IDLE, dtype=np.int32)
        for f in frames:
            if f.chosen is not None and f.chosen < n:
                table[f.j, f.t] = f.chosen
        return Schedule(self.system, self.platform, table)


@register_solver(
    "csp2",
    description=(
        "The paper's dedicated chronological slot-by-slot solver (idle "
        "rule, per-slot symmetry breaking, demand pruning)"
    ),
    paper_section="V",
    pick_when="A strong exact default; +dc is the paper's best performer",
    capabilities=(PROVES_INFEASIBILITY, EXACT),
    suffixes={
        "rm": "Dedicated solver, rate-monotonic value order (smallest T first)",
        "dm": "Dedicated solver, deadline-monotonic order (smallest D first)",
        "tc": "Dedicated solver, largest-laxity-last order (smallest T-C first)",
        "dc": "Dedicated solver, smallest D-C first — the experimental "
        "winner (fewest overruns, Table I) and this repo's fastest exact solver",
        "learn": "Encoding #2 on the conflict-directed engine: 1-UIP nogood "
        "learning + backjumping over the (D-C)-ordered chronological search "
        "— the strongest exact option on UNSAT-heavy boundary instances",
    },
    options=(
        "symmetry_breaking", "idle_rule", "demand_pruning", "energetic_pruning",
        "nogood_limit",
    ),
    platforms=("identical", "uniform", "heterogeneous"),
    hidden_suffixes=("t-c", "(t-c)", "d-c", "(d-c)", "none"),
)
def _build_csp2(system, platform, spec, seed, **options):
    """Registry factory: ``csp2[+heuristic|+learn]`` (suffix = value order,
    or the conflict-directed learning variant on the generic engine)."""
    if spec.suffix == "learn":
        from repro.solvers.csp2_generic import Csp2GenericSolver

        for opt in ("idle_rule", "demand_pruning", "energetic_pruning"):
            if opt in options:
                raise ValueError(
                    f"option {opt!r} belongs to the dedicated chronological "
                    "solver; 'csp2+learn' runs encoding #2 on the learning "
                    "engine and accepts symmetry_breaking/nogood_limit"
                )
        solver = Csp2GenericSolver(
            system, platform, heuristic="dc", learn=True, **options
        )
        solver.name = "csp2+learn"
        return solver
    if "nogood_limit" in options:
        raise ValueError(
            "nogood_limit only applies to the learning variant; use 'csp2+learn'"
        )
    heuristic = _checked_heuristic(spec.suffix) if spec.suffix else None
    return Csp2DedicatedSolver(system, platform, heuristic=heuristic, **options)


def _checked_heuristic(suffix):
    """Validate a value-ordering suffix (raises ValueError on a bad name)."""
    from repro.solvers.ordering import heuristic_key

    heuristic_key(suffix)  # validates / raises
    return suffix
