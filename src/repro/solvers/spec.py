"""Structured solver names: parse once, pass around, never re-split.

Every solver in this library is addressed by a short string — ``"csp2+dc"``,
``"sat+pairwise"``, ``"portfolio:csp2+dc,sat"``, ``"screen+csp2+dc"`` —
typed at the CLI, stored in batch cells and cache keys, and printed in the
tables.  This module is the single grammar for those strings:

    name      ::=  simple | portfolio | screen
    simple    ::=  base [ "+" suffix ]
    portfolio ::=  "portfolio:" member ( "," member )*
    member    ::=  simple | screen
    screen    ::=  "screen" [ "+" ( simple | portfolio ) ]

:class:`SolverSpec` is the parsed form.  The registry resolves a spec's
``base`` to a registered plugin and hands the spec to its factory, so a
plugin decides what its suffix means (value-ordering heuristic, variable
heuristic, at-most-one encoding, ...) while the parse stays uniform.

Two base names are reserved for the meta-solvers and carry *member*
specs instead of a suffix: ``portfolio`` (race the members) and
``screen`` (run the polynomial-time analysis cascade first, fall through
to the single wrapped member only when every test abstains).  Meta
names never nest themselves — ``screen+screen+x`` and a portfolio
inside a portfolio (even via a screen member) are parse errors.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["SolverSpec", "PORTFOLIO_BASE", "SCREEN_BASE"]

#: the reserved base name of the racing meta-solver
PORTFOLIO_BASE = "portfolio"

#: the reserved base name of the screening-cascade meta-solver
SCREEN_BASE = "screen"


@dataclass(frozen=True)
class SolverSpec:
    """One parsed solver name.

    Attributes
    ----------
    base:
        The registry key: ``"csp2"`` in ``"csp2+dc"``, ``"portfolio"``
        for a portfolio name, ``"screen"`` for a screening cascade.
    suffix:
        The part after ``+`` (``None`` when absent).  Meaning is
        plugin-defined: heuristic for ``csp1``/``csp2*``, at-most-one
        encoding for ``sat``.  Always ``None`` for meta names, whose
        ``+``/``:`` payload parses into ``members`` instead.
    members:
        For meta names only: the member specs, in declaration order.  A
        portfolio has one or more; a screen has zero (bare cascade —
        abstaining answers UNKNOWN) or exactly one (the solver that runs
        when every polynomial test abstains).
    """

    base: str
    suffix: str | None = None
    members: tuple["SolverSpec", ...] = field(default=())

    @classmethod
    def parse(cls, name: "str | SolverSpec") -> "SolverSpec":
        """Parse a solver name string (idempotent on an existing spec).

        Raises ``ValueError`` on an empty name, an empty portfolio member
        list, a portfolio nested inside a portfolio (directly or via a
        screen member), or a screen nested inside a screen.
        """
        if isinstance(name, cls):
            return name
        key = str(name).strip().lower()
        if not key:
            raise ValueError("empty solver name")
        if key.startswith(PORTFOLIO_BASE + ":"):
            body = key[len(PORTFOLIO_BASE) + 1 :]
            members = tuple(
                cls.parse(part) for part in body.split(",") if part.strip()
            )
            if not members:
                raise ValueError(
                    f"portfolio needs at least one member, got {name!r} "
                    "(expected e.g. 'portfolio:csp2+dc,sat')"
                )
            if any(m.has_portfolio for m in members):
                raise ValueError(f"portfolios cannot nest: {name!r}")
            return cls(base=PORTFOLIO_BASE, members=members)
        if key == PORTFOLIO_BASE:
            raise ValueError(
                "a portfolio needs members: 'portfolio:<name>,<name>,...'"
            )
        if key == SCREEN_BASE:
            return cls(base=SCREEN_BASE)
        if key.startswith(SCREEN_BASE + "+"):
            inner = cls.parse(key[len(SCREEN_BASE) + 1 :])
            if inner.is_screen:
                raise ValueError(f"screens cannot nest: {name!r}")
            return cls(base=SCREEN_BASE, members=(inner,))
        base, _, suffix = key.partition("+")
        if not base:
            raise ValueError(f"solver name {name!r} has no base")
        return cls(base=base, suffix=suffix or None)

    @property
    def is_portfolio(self) -> bool:
        """True for ``portfolio:...`` specs."""
        return self.base == PORTFOLIO_BASE

    @property
    def is_screen(self) -> bool:
        """True for ``screen`` / ``screen+inner`` specs."""
        return self.base == SCREEN_BASE

    @property
    def has_portfolio(self) -> bool:
        """Whether this spec is, or wraps, a portfolio (nesting guard)."""
        return self.is_portfolio or any(m.has_portfolio for m in self.members)

    @property
    def screened(self) -> "SolverSpec | None":
        """A screen's fall-through member spec (None for a bare cascade)."""
        if self.is_screen and self.members:
            return self.members[0]
        return None

    @property
    def canonical(self) -> str:
        """The normalized name string; ``parse(canonical)`` round-trips."""
        if self.is_portfolio:
            return PORTFOLIO_BASE + ":" + ",".join(
                m.canonical for m in self.members
            )
        if self.is_screen:
            inner = self.screened
            return SCREEN_BASE + (f"+{inner.canonical}" if inner else "")
        return self.base + (f"+{self.suffix}" if self.suffix else "")

    def __str__(self) -> str:
        return self.canonical
