"""Structured solver names: parse once, pass around, never re-split.

Every solver in this library is addressed by a short string — ``"csp2+dc"``,
``"sat+pairwise"``, ``"portfolio:csp2+dc,sat"`` — typed at the CLI, stored
in batch cells and cache keys, and printed in the tables.  This module is
the single grammar for those strings:

    name      ::=  simple | portfolio
    simple    ::=  base [ "+" suffix ]
    portfolio ::=  "portfolio:" simple ( "," simple )*

:class:`SolverSpec` is the parsed form.  The registry resolves a spec's
``base`` to a registered plugin and hands the spec to its factory, so a
plugin decides what its suffix means (value-ordering heuristic, variable
heuristic, at-most-one encoding, ...) while the parse stays uniform.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["SolverSpec", "PORTFOLIO_BASE"]

#: the reserved base name of the racing meta-solver
PORTFOLIO_BASE = "portfolio"


@dataclass(frozen=True)
class SolverSpec:
    """One parsed solver name.

    Attributes
    ----------
    base:
        The registry key: ``"csp2"`` in ``"csp2+dc"``, ``"portfolio"``
        for a portfolio name.
    suffix:
        The part after ``+`` (``None`` when absent).  Meaning is
        plugin-defined: heuristic for ``csp1``/``csp2*``, at-most-one
        encoding for ``sat``.
    members:
        For portfolios only: the member specs, in declaration order.
    """

    base: str
    suffix: str | None = None
    members: tuple["SolverSpec", ...] = field(default=())

    @classmethod
    def parse(cls, name: "str | SolverSpec") -> "SolverSpec":
        """Parse a solver name string (idempotent on an existing spec).

        Raises ``ValueError`` on an empty name, an empty portfolio member
        list, or a portfolio nested inside a portfolio.
        """
        if isinstance(name, cls):
            return name
        key = str(name).strip().lower()
        if not key:
            raise ValueError("empty solver name")
        if key.startswith(PORTFOLIO_BASE + ":"):
            body = key[len(PORTFOLIO_BASE) + 1 :]
            members = tuple(
                cls.parse(part) for part in body.split(",") if part.strip()
            )
            if not members:
                raise ValueError(
                    f"portfolio needs at least one member, got {name!r} "
                    "(expected e.g. 'portfolio:csp2+dc,sat')"
                )
            if any(m.is_portfolio for m in members):
                raise ValueError(f"portfolios cannot nest: {name!r}")
            return cls(base=PORTFOLIO_BASE, members=members)
        if key == PORTFOLIO_BASE:
            raise ValueError(
                "a portfolio needs members: 'portfolio:<name>,<name>,...'"
            )
        base, _, suffix = key.partition("+")
        if not base:
            raise ValueError(f"solver name {name!r} has no base")
        return cls(base=base, suffix=suffix or None)

    @property
    def is_portfolio(self) -> bool:
        """True for ``portfolio:...`` specs."""
        return self.base == PORTFOLIO_BASE

    @property
    def canonical(self) -> str:
        """The normalized name string; ``parse(canonical)`` round-trips."""
        if self.is_portfolio:
            return PORTFOLIO_BASE + ":" + ",".join(
                m.canonical for m in self.members
            )
        return self.base + (f"+{self.suffix}" if self.suffix else "")

    def __str__(self) -> str:
        return self.canonical
