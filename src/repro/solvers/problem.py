"""The unified solving front door: ``Problem`` in, ``SolveReport`` out.

Every way this library answers an instance — the one-call
:func:`repro.solve`, the streaming :func:`repro.solve_iter`, the batch
layer's cells, the table drivers, the CLI — now funnels through one
engine, :func:`solve_problem`:

* a :class:`Problem` is the *question*: a task system, a platform, the
  search budget, the seed, and an optional memory guard — a plain value
  object that pickles across process boundaries and round-trips JSON;
* a :class:`SolveReport` is the *answer*: the underlying
  :class:`~repro.solvers.base.SolveResult` plus everything the old
  ``MgrtsResult`` carried (clone bookkeeping, merged display schedule)
  and a ``to_dict``/``from_dict`` pair for JSONL streaming;
* :func:`solve_problem` does the plumbing once: arbitrary-deadline
  cloning (Section VI-B), the registry lookup, the memory guard for
  generic-engine encodings, budget accounting (model construction counts
  against the wall budget; an overrun is charged the full budget), and
  C1-C4 validation of any returned schedule.

:func:`solve_iter` fans a ``problems x solvers`` matrix out over worker
processes and *yields* reports as cells complete, so campaign drivers
can stream results instead of blocking on the whole matrix.
"""

from __future__ import annotations

import time
from collections.abc import Iterable, Iterator, Sequence
from dataclasses import dataclass, replace
from typing import Any

from repro.model.platform import Platform
from repro.model.system import TaskSystem
from repro.model.transform import CloneMap, clone_for_arbitrary_deadlines
from repro.schedule.io import (
    platform_from_dict,
    platform_to_dict,
    system_from_dict,
    system_to_dict,
)
from repro.schedule.schedule import Schedule
from repro.schedule.validate import validate
from repro.solvers.base import Feasibility, SolveResult, SolverStats
from repro.solvers.registry import create_solver, solver_info
from repro.solvers.spec import SolverSpec

__all__ = [
    "Problem",
    "SolveReport",
    "solve_problem",
    "solve_iter",
    "estimate_generic_variables",
    "FAULT_PREFIX",
    "fault_label",
    "fault_report",
    "is_fault_label",
]

#: report status string for a cell skipped by the memory guard
SKIPPED_MEMORY = "skipped-memory"

#: prefix of every fault status label (``fault:crash``, ``fault:oom``,
#: ``fault:timeout``, ``fault:error``): the cell's *execution* failed —
#: worker death, watchdog timeout, unhandled error — as opposed to the
#: solver answering ``unknown`` within a healthy run.  Fault statuses are
#: journaled like any other outcome so campaigns always complete, and
#: they are never verdicts: difftest and the tables treat them as
#: UNKNOWN-with-provenance.
FAULT_PREFIX = "fault:"


def fault_label(kind: str) -> str:
    """The status label for a fault of ``kind`` (e.g. ``"fault:crash"``)."""
    return FAULT_PREFIX + kind


def is_fault_label(status: str) -> bool:
    """True iff ``status`` records an execution fault, not a verdict."""
    return status.startswith(FAULT_PREFIX)


def estimate_generic_variables(system: TaskSystem, platform: Platform) -> int:
    """Predicted model size ``sum_i m * (T/T_i) * D_i`` of the generic-
    engine encodings (the paper: CSP1 "runs out of memory on 'large'
    instances", Table IV); drives the :attr:`Problem.variable_limit` guard."""
    return sum(
        platform.m * system.n_jobs(i) * system[i].deadline
        for i in range(system.n)
    )


@dataclass(frozen=True)
class Problem:
    """One MGRTS question as a plain, picklable value object.

    Attributes
    ----------
    system:
        Any task system; arbitrary deadlines are cloned by the engine.
    platform:
        The processors (:meth:`of` also accepts a bare ``m``).
    time_limit, node_limit:
        Search budget (the paper used 30 s); model construction counts
        against the wall budget.
    seed:
        Randomized-strategy seed, forwarded to the solver.
    label:
        Free-form tag carried into the report (campaign bookkeeping).
    variable_limit:
        When set, generic-engine encodings whose predicted variable count
        exceeds it are reported as skipped instead of being built.
    """

    system: TaskSystem
    platform: Platform
    time_limit: float | None = None
    node_limit: int | None = None
    seed: int | None = None
    label: str | None = None
    variable_limit: int | None = None

    @classmethod
    def of(
        cls,
        system: TaskSystem,
        platform: Platform | None = None,
        m: int | None = None,
        **kwargs,
    ) -> "Problem":
        """Build a problem from either a platform or a processor count."""
        if platform is None:
            if m is None:
                raise ValueError("pass either platform= or m=")
            platform = Platform.identical(m)
        elif m is not None and m != platform.m:
            raise ValueError(
                f"conflicting processor counts: m={m}, platform.m={platform.m}"
            )
        return cls(system=system, platform=platform, **kwargs)

    def to_dict(self) -> dict[str, Any]:
        """JSON-able form (inverse: :meth:`from_dict`)."""
        return {
            "system": system_to_dict(self.system),
            "platform": platform_to_dict(self.platform),
            "time_limit": self.time_limit,
            "node_limit": self.node_limit,
            "seed": self.seed,
            "label": self.label,
            "variable_limit": self.variable_limit,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "Problem":
        """Inverse of :meth:`to_dict`."""
        return cls(
            system=system_from_dict(data["system"]),
            platform=platform_from_dict(data["platform"]),
            time_limit=data.get("time_limit"),
            node_limit=data.get("node_limit"),
            seed=data.get("seed"),
            label=data.get("label"),
            variable_limit=data.get("variable_limit"),
        )


def _merge_clone_schedule(schedule: Schedule, clone_map: CloneMap) -> Schedule:
    from repro.solvers.api import merge_clone_schedule

    return merge_clone_schedule(schedule, clone_map)


def _memory_guarded_spec(spec: SolverSpec) -> SolverSpec | None:
    """``spec`` with memory-bound parts stripped; None if nothing remains.

    Applied when the predicted model size exceeds the problem's
    ``variable_limit``: a memory-bound simple solver is dropped entirely,
    a portfolio keeps racing with its memory-safe members, and a screen
    keeps screening (the cascade itself is memory-light) but loses a
    memory-bound fall-through engine — an abstaining cascade then
    reports UNKNOWN instead of building a model that cannot fit.
    """
    if spec.is_portfolio:
        kept = tuple(
            g for m in spec.members
            if (g := _memory_guarded_spec(m)) is not None
        )
        if kept == spec.members:
            return spec
        return SolverSpec(base=spec.base, members=kept) if kept else None
    if spec.is_screen:
        inner = spec.screened
        if inner is None:
            return spec
        guarded = _memory_guarded_spec(inner)
        if guarded is inner:
            return spec
        return SolverSpec(
            base=spec.base, members=(guarded,) if guarded is not None else ()
        )
    return None if solver_info(spec).memory_bound else spec


@dataclass
class SolveReport:
    """One (problem, solver) outcome, rich enough to need nothing else.

    Covers everything the deprecated ``MgrtsResult`` exposed (status,
    stats, validated schedule over the cloned system, merged display
    schedule, clone bookkeeping) plus the requested solver name, the
    budget-accounted wall clock, and a JSONL-ready dict form.
    """

    problem: Problem
    solver: str
    result: SolveResult | None
    cloned_system: TaskSystem
    clone_map: CloneMap
    elapsed: float
    #: non-None when the cell never produced a solver result: ``"memory"``
    #: (the variable-limit guard) or a ``fault:*`` label (the cell's
    #: execution crashed / hung / OOMed — see :data:`FAULT_PREFIX`)
    skipped: str | None = None
    #: position in the solve_iter matrix (problem-major, solver-minor)
    index: int = 0
    #: fault provenance (kind / detail / attempts) when ``skipped`` is a
    #: ``fault:*`` label; rides the JSONL round-trip
    fault: dict | None = None

    # -- MgrtsResult-compatible surface ---------------------------------------
    @property
    def system(self) -> TaskSystem:
        """The original (possibly arbitrary-deadline) system."""
        return self.problem.system

    @property
    def status(self) -> Feasibility:
        """The solver verdict (UNKNOWN for skipped cells)."""
        if self.result is None:
            return Feasibility.UNKNOWN
        return self.result.status

    @property
    def status_label(self) -> str:
        """The verdict as a record string (``skipped-memory`` and
        ``fault:*`` included)."""
        if self.skipped is None:
            return self.status.value
        if is_fault_label(self.skipped):
            return self.skipped
        return SKIPPED_MEMORY

    @property
    def is_feasible(self) -> bool:
        """True iff a valid schedule was found within the budget."""
        return self.status is Feasibility.FEASIBLE

    @property
    def timed_out(self) -> bool:
        """True iff the budget expired without an answer (an overrun)."""
        return self.status is Feasibility.UNKNOWN

    @property
    def schedule(self) -> Schedule | None:
        """The validated schedule over the (cloned) constrained system."""
        return None if self.result is None else self.result.schedule

    @property
    def original_schedule(self) -> Schedule | None:
        """Schedule relabeled with the original task indices (for display)."""
        if self.schedule is None:
            return None
        if self.clone_map.is_identity:
            return self.schedule
        return _merge_clone_schedule(self.schedule, self.clone_map)

    @property
    def stats(self) -> SolverStats:
        """Search-effort counters of the underlying run."""
        if self.result is None:
            return SolverStats(elapsed=self.elapsed)
        return self.result.stats

    @property
    def winner(self) -> str:
        """The engine that produced the answer (a portfolio's winning
        member; otherwise the configured solver's own name)."""
        if self.result is None:
            return self.solver
        return self.result.solver_name

    @property
    def decided_by(self) -> str | None:
        """Provenance of the verdict: the analysis test (``screen``'s
        cascade), winning member (portfolio) or engine that decided this
        cell; ``supervisor:<kind>`` for faulted cells; ``None`` for
        cells that never ran."""
        if self.skipped is not None and is_fault_label(self.skipped):
            return "supervisor:" + self.skipped[len(FAULT_PREFIX):]
        if self.result is None:
            return None
        return self.result.decided_by or self.winner

    # -- persistence ----------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        """JSONL-ready form; :meth:`from_dict` round-trips it."""
        stats = self.stats
        return {
            "problem": self.problem.to_dict(),
            "solver": self.solver,
            "status": self.status_label,
            "winner": self.winner,
            "decided_by": self.decided_by,
            "elapsed": self.elapsed,
            "index": self.index,
            "stats": {
                "nodes": stats.nodes,
                "fails": stats.fails,
                "propagations": stats.propagations,
                "max_depth": stats.max_depth,
                "elapsed": stats.elapsed,
                "extra": stats.extra,
            },
            "schedule": (
                None if self.schedule is None else self.schedule.table.tolist()
            ),
            "fault": self.fault,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "SolveReport":
        """Rebuild a report from :meth:`to_dict` output.

        The clone bookkeeping is recomputed from the problem (it is a
        pure function of the system), and the schedule — when present —
        is rebuilt over the cloned system and platform.
        """
        problem = Problem.from_dict(data["problem"])
        cloned, cmap = clone_for_arbitrary_deadlines(problem.system)
        status_label = data["status"]
        skipped = None
        if status_label == SKIPPED_MEMORY:
            skipped = "memory"
        elif is_fault_label(status_label):
            skipped = status_label
        s = data["stats"]
        stats = SolverStats(
            nodes=s["nodes"],
            fails=s["fails"],
            propagations=s["propagations"],
            max_depth=s["max_depth"],
            elapsed=s["elapsed"],
            extra=s["extra"],
        )
        result = None
        if skipped is None:
            schedule = None
            if data["schedule"] is not None:
                schedule = Schedule(cloned, problem.platform, data["schedule"])
            result = SolveResult(
                status=Feasibility(status_label),
                schedule=schedule,
                stats=stats,
                solver_name=data["winner"],
                decided_by=data.get("decided_by"),
            )
        return cls(
            problem=problem,
            solver=data["solver"],
            result=result,
            cloned_system=cloned,
            clone_map=cmap,
            elapsed=data["elapsed"],
            skipped=skipped,
            index=data.get("index", 0),
            fault=data.get("fault"),
        )


def solve_problem(
    problem: Problem,
    solver: "str | SolverSpec" = "csp2+dc",
    check: bool = True,
    **options,
) -> SolveReport:
    """Answer one problem with one solver — the single shared engine.

    Clones arbitrary-deadline systems, applies the
    :attr:`Problem.variable_limit` memory guard to memory-bound solver
    families, counts model construction against the wall budget, charges
    a full budget to overruns, and (with ``check``) validates any
    returned schedule against C1-C4.  Extra ``options`` are forwarded to
    the solver after registry validation.
    """
    spec = SolverSpec.parse(solver)
    solver_info(spec)  # fail fast on unknown base names
    cloned, cmap = clone_for_arbitrary_deadlines(problem.system)
    if problem.platform.kind == "heterogeneous" and not cmap.is_identity:
        raise ValueError(
            "heterogeneous rate matrices are indexed by task; expand the "
            "matrix for the cloned system and pass the cloned system directly"
        )
    requested = spec.canonical
    if problem.variable_limit is not None:
        over_limit = (
            estimate_generic_variables(cloned, problem.platform)
            > problem.variable_limit
        )
        if over_limit:
            # strip whatever would not fit: a memory-bound solver skips,
            # a portfolio races on with its memory-safe members, a screen
            # still screens but loses a memory-bound fall-through
            guarded = _memory_guarded_spec(spec)
            if guarded is None:
                return SolveReport(
                    problem=problem,
                    solver=requested,
                    result=None,
                    cloned_system=cloned,
                    clone_map=cmap,
                    elapsed=problem.time_limit or 0.0,
                    skipped="memory",
                )
            spec = guarded
    t0 = time.monotonic()
    engine = create_solver(
        spec, cloned, problem.platform, seed=problem.seed, **options
    )
    build = time.monotonic() - t0
    remaining = problem.time_limit
    if remaining is not None:
        remaining = max(0.0, remaining - build)
    result = engine.solve(time_limit=remaining, node_limit=problem.node_limit)
    elapsed = build + result.stats.elapsed
    if problem.time_limit is not None:
        elapsed = min(elapsed, problem.time_limit)
        if result.status is Feasibility.UNKNOWN and problem.node_limit is None:
            # a wall-clock overrun consumed the full budget; with a node
            # budget in play the stop may have been node-caused, so keep
            # the true wall time
            elapsed = problem.time_limit
    if check and result.schedule is not None:
        validate(result.schedule).raise_if_invalid()
    return SolveReport(
        problem=problem,
        solver=requested,
        result=result,
        cloned_system=cloned,
        clone_map=cmap,
        elapsed=elapsed,
    )


def _solve_entry(entry) -> SolveReport:
    """Pool worker: one (index, problem, solver, check, options) cell."""
    index, problem, solver, check, options = entry
    report = solve_problem(problem, solver, check=check, **options)
    return replace(report, index=index)


def fault_report(
    problem: Problem,
    solver: "str | SolverSpec",
    kind: str,
    detail: str,
    attempts: int = 1,
    index: int = 0,
) -> SolveReport:
    """A synthesized ``fault:*`` report for a cell whose execution died.

    The cell is charged its full wall budget (like an overrun) and the
    fault provenance rides the report, so downstream consumers — the
    solve_iter stream, the solver service's response lines — see an
    UNKNOWN-with-a-reason instead of a missing cell or a dead campaign.
    """
    cloned, cmap = clone_for_arbitrary_deadlines(problem.system)
    spec = solver if isinstance(solver, SolverSpec) else SolverSpec.parse(solver)
    return SolveReport(
        problem=problem,
        solver=spec.canonical,
        result=None,
        cloned_system=cloned,
        clone_map=cmap,
        elapsed=problem.time_limit or 0.0,
        skipped=fault_label(kind),
        index=index,
        fault={"kind": kind, "detail": detail, "attempts": attempts},
    )


def _fault_report(
    entry, kind: str, detail: str, attempts: int = 1
) -> SolveReport:
    """:func:`fault_report` for one solve_iter pool entry."""
    index, problem, solver, _check, _options = entry
    return fault_report(
        problem, solver, kind, detail, attempts=attempts, index=index
    )


def _guarded_entry(entry) -> SolveReport:
    """In-process cell execution that records failures as fault reports."""
    try:
        return _solve_entry(entry)
    except Exception:
        import traceback

        return _fault_report(entry, "error", traceback.format_exc(limit=20))


def solve_iter(
    problems: "Iterable[Problem] | Problem",
    solvers: "Sequence[str | SolverSpec] | str" = ("csp2+dc",),
    jobs: int = 1,
    check: bool = True,
    options: dict | None = None,
    progress=None,
    on_fault: str = "raise",
) -> Iterator[SolveReport]:
    """Stream :class:`SolveReport` records for a problems x solvers matrix.

    Parameters
    ----------
    problems:
        One problem or an iterable of them.
    solvers:
        One name/spec or a sequence; every solver runs on every problem.
    jobs:
        ``1`` solves serially in matrix order (problem-major,
        solver-minor); ``N > 1`` fans cells out over ``N`` worker
        processes and yields reports *as they complete* — use each
        report's :attr:`~SolveReport.index` to restore matrix order.
    check:
        Validate returned schedules against C1-C4.
    options:
        Extra solver options applied to every cell (registry-validated).
    progress:
        Optional ``progress(done, total)`` callback.
    on_fault:
        ``"raise"`` (default) propagates a failing cell's exception —
        the historical behavior.  ``"record"`` makes the matrix
        fault-tolerant: a cell whose execution raises or whose worker
        dies (even a pool-breaking SIGKILL) yields a ``fault:*`` report
        instead of aborting the stream; pool-breakage victims are
        re-run once in supervised one-shot children before being
        classified.

    Yields
    ------
    SolveReport
        One per (problem, solver) cell, always — under
        ``on_fault="record"`` a faulted cell yields a report whose
        :attr:`~SolveReport.status_label` is ``fault:<kind>``.
    """
    if isinstance(problems, Problem):
        problems = [problems]
    if isinstance(solvers, (str, SolverSpec)):
        solvers = [solvers]
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    if on_fault not in ("raise", "record"):
        raise ValueError(f"on_fault must be 'raise' or 'record', got {on_fault!r}")
    options = options or {}
    entries = [
        (index, problem, SolverSpec.parse(s), check, options)
        for index, (problem, s) in enumerate(
            (p, s) for p in problems for s in solvers
        )
    ]
    total = len(entries)
    done = 0

    def tick():
        if progress is not None:
            progress(done, total)

    if jobs == 1:
        runner = _guarded_entry if on_fault == "record" else _solve_entry
        for entry in entries:
            report = runner(entry)
            done += 1
            tick()
            yield report
        return
    from concurrent.futures import ProcessPoolExecutor, as_completed

    failed: list[tuple] = []
    with ProcessPoolExecutor(max_workers=jobs) as pool:
        futures = {pool.submit(_solve_entry, entry): entry for entry in entries}
        for fut in as_completed(futures):
            try:
                report = fut.result()
            except Exception:
                if on_fault == "raise":
                    raise
                # a worker exception or a broken pool (a SIGKILLed
                # worker fails every in-flight future): queue the cell
                # for the supervised recovery pass below
                failed.append(futures[fut])
                continue
            done += 1
            tick()
            yield report
    # recovery pass: each failed cell re-runs once in a supervised
    # one-shot child — a broken pool's innocent victims succeed here,
    # repeat offenders classify into fault reports
    if failed:
        from repro.batch.supervise import DEFAULT_GRACE, run_supervised

        for entry in sorted(failed, key=lambda e: e[0]):
            wall = entry[1].time_limit
            result, fault = run_supervised(
                _solve_entry, entry,
                wall_limit=None if wall is None else wall + DEFAULT_GRACE,
            )
            if fault is None:
                report = result
            else:
                report = _fault_report(
                    entry, fault.kind, fault.detail, attempts=2
                )
            done += 1
            tick()
            yield report
