"""CSP1 solved by the generic engine (the paper's Choco setup, Section VII).

The paper hands CSP1 to a state-of-the-art generic solver with its default
(randomized) search strategy and observes run-to-run variance (Section
VII-B).  Here the generic engine plays Choco's role: min-domain variable
ordering with optional seeded random tie-breaking reproduces both the
behaviour and the variance; other heuristics are exposed for ablations.

``csp1+learn`` runs the same encoding on the conflict-directed engine:
1-UIP nogood learning with backjumping, dom/wdeg + last-conflict variable
ordering and phase-saved values (see docs/ARCHITECTURE.md,
"Conflict-directed search").  On UNSAT-heavy boundary instances it proves
infeasibility orders of magnitude faster than the chronological search.
"""

from __future__ import annotations

from repro.csp.heuristics import (
    make_var_order_last_conflict,
    value_order_ascending,
    var_order_dom_deg,
    var_order_dom_wdeg,
    var_order_input,
    var_order_min_domain,
)
from repro.csp.search import Solver, Status
from repro.encodings.csp1 import encode_csp1
from repro.model.platform import Platform
from repro.model.system import TaskSystem
from repro.solvers.base import (
    Feasibility,
    SolveResult,
    SolverStats,
    learning_extra_stats,
)
from repro.solvers.registry import EXACT, PROVES_INFEASIBILITY, register_solver

__all__ = ["Csp1GenericSolver"]

_VAR_ORDERS = {
    "min_dom": var_order_min_domain,
    "dom_deg": var_order_dom_deg,
    "input": var_order_input,
}

_STATUS_MAP = {
    Status.SAT: Feasibility.FEASIBLE,
    Status.UNSAT: Feasibility.INFEASIBLE,
    Status.UNKNOWN: Feasibility.UNKNOWN,
}


class Csp1GenericSolver:
    """Encode as CSP1, solve with backtracking + propagation.

    Parameters
    ----------
    system, platform:
        The constrained-deadline instance.
    var_heuristic:
        ``min_dom`` (default), ``dom_deg`` or ``input``.
    seed:
        When set, ties in the variable heuristic break uniformly at random
        (reproducing the generic solver's randomized default strategy).
    learn:
        Switch to the conflict-directed engine (``csp1+learn``): nogood
        learning, backjumping, dom/wdeg + last-conflict variable order
        and phase saving (``var_heuristic`` is ignored).
    nogood_limit:
        Learned-nogood store capacity (learning only).
    vectorize:
        Forwarded to the engine: None (auto) batches the counting
        propagators and shadows domains when numpy is available, False
        forces the legacy path, True insists on the kernels.  Search
        decisions are byte-identical either way.
    """

    name = "csp1"

    def __init__(
        self,
        system: TaskSystem,
        platform: Platform,
        var_heuristic: str = "min_dom",
        seed: int | None = None,
        learn: bool = False,
        nogood_limit: int = 10_000,
        vectorize: bool | None = None,
    ) -> None:
        if var_heuristic not in _VAR_ORDERS:
            raise ValueError(
                f"unknown var_heuristic {var_heuristic!r}; expected one of "
                f"{sorted(_VAR_ORDERS)}"
            )
        self.system = system
        self.platform = platform
        self.var_heuristic = var_heuristic
        self.seed = seed
        self.learn = bool(learn)
        self.nogood_limit = nogood_limit
        self.vectorize = vectorize
        if self.learn:
            self.name = "csp1+learn"
        self.encoding = encode_csp1(system, platform)

    def solve(
        self, time_limit: float | None = None, node_limit: int | None = None
    ) -> SolveResult:
        """Run the generic engine on encoding #1 under the given budgets."""
        if self.learn:
            engine = Solver(
                self.encoding.model,
                var_order=make_var_order_last_conflict(var_order_dom_wdeg),
                value_order=value_order_ascending,
                seed=self.seed,
                learn=True,
                nogood_limit=self.nogood_limit,
                phase_saving=True,
            )
        else:
            engine = Solver(
                self.encoding.model,
                var_order=_VAR_ORDERS[self.var_heuristic],
                value_order=value_order_ascending,
                seed=self.seed,
                vectorize=self.vectorize,
            )
        out = engine.solve(time_limit=time_limit, node_limit=node_limit)
        extra = {"variables": self.encoding.n_variables}
        if self.learn:
            extra.update(learning_extra_stats(out.stats))
        stats = SolverStats(
            nodes=out.stats.nodes,
            fails=out.stats.fails,
            propagations=out.stats.propagations,
            max_depth=out.stats.max_depth,
            elapsed=out.stats.elapsed,
            extra=extra,
        )
        schedule = (
            self.encoding.decode(out.solution) if out.status is Status.SAT else None
        )
        return SolveResult(
            status=_STATUS_MAP[out.status],
            schedule=schedule,
            stats=stats,
            solver_name=self.name,
        )


@register_solver(
    "csp1",
    description=(
        "Encoding #1 (a variable per in-window (task, processor, slot)) on "
        "the generic CSP engine, min-domain ordering with seeded random "
        "tie-breaking — the paper's Choco setup"
    ),
    paper_section="IV, VII-B",
    pick_when=(
        "Reproducing the paper's generic-solver columns; never for "
        "performance — it overruns and exhausts memory first (Tables I, IV)"
    ),
    capabilities=(PROVES_INFEASIBILITY, EXACT),
    suffixes={
        "dom_deg": "Same encoding, dom/deg variable ordering (ablation)",
        "input": "Same encoding, input-order variables (ablation; close to "
        "naive chronological enumeration)",
        "learn": "Same encoding on the conflict-directed engine: 1-UIP "
        "nogood learning, backjumping, dom/wdeg + last-conflict ordering, "
        "phase saving — the infeasibility prover of the family",
    },
    options=("nogood_limit", "vectorize"),
    platforms=("identical", "uniform", "heterogeneous"),
    memory_bound=True,
    hidden_suffixes=("min_dom", "vec"),
)
def _build_csp1(system, platform, spec, seed, **options):
    """Registry factory: ``csp1[+var_heuristic|+learn|+vec]``."""
    if spec.suffix == "learn":
        return Csp1GenericSolver(system, platform, seed=seed, learn=True, **options)
    if "nogood_limit" in options:
        raise ValueError(
            "nogood_limit only applies to the learning variant; "
            f"use '{spec.base}+learn'"
        )
    if spec.suffix == "vec":  # insist on the vectorised kernels
        options.setdefault("vectorize", True)
        return Csp1GenericSolver(system, platform, seed=seed, **options)
    return Csp1GenericSolver(
        system, platform, var_heuristic=spec.suffix or "min_dom", seed=seed,
        **options,
    )
