"""CSP1 solved by the generic engine (the paper's Choco setup, Section VII).

The paper hands CSP1 to a state-of-the-art generic solver with its default
(randomized) search strategy and observes run-to-run variance (Section
VII-B).  Here the generic engine plays Choco's role: min-domain variable
ordering with optional seeded random tie-breaking reproduces both the
behaviour and the variance; other heuristics are exposed for ablations.
"""

from __future__ import annotations

from repro.csp.heuristics import (
    value_order_ascending,
    var_order_dom_deg,
    var_order_input,
    var_order_min_domain,
)
from repro.csp.search import Solver, Status
from repro.encodings.csp1 import encode_csp1
from repro.model.platform import Platform
from repro.model.system import TaskSystem
from repro.solvers.base import Feasibility, SolveResult, SolverStats
from repro.solvers.registry import EXACT, PROVES_INFEASIBILITY, register_solver

__all__ = ["Csp1GenericSolver"]

_VAR_ORDERS = {
    "min_dom": var_order_min_domain,
    "dom_deg": var_order_dom_deg,
    "input": var_order_input,
}

_STATUS_MAP = {
    Status.SAT: Feasibility.FEASIBLE,
    Status.UNSAT: Feasibility.INFEASIBLE,
    Status.UNKNOWN: Feasibility.UNKNOWN,
}


class Csp1GenericSolver:
    """Encode as CSP1, solve with backtracking + propagation.

    Parameters
    ----------
    system, platform:
        The constrained-deadline instance.
    var_heuristic:
        ``min_dom`` (default), ``dom_deg`` or ``input``.
    seed:
        When set, ties in the variable heuristic break uniformly at random
        (reproducing the generic solver's randomized default strategy).
    """

    name = "csp1"

    def __init__(
        self,
        system: TaskSystem,
        platform: Platform,
        var_heuristic: str = "min_dom",
        seed: int | None = None,
    ) -> None:
        if var_heuristic not in _VAR_ORDERS:
            raise ValueError(
                f"unknown var_heuristic {var_heuristic!r}; expected one of "
                f"{sorted(_VAR_ORDERS)}"
            )
        self.system = system
        self.platform = platform
        self.var_heuristic = var_heuristic
        self.seed = seed
        self.encoding = encode_csp1(system, platform)

    def solve(
        self, time_limit: float | None = None, node_limit: int | None = None
    ) -> SolveResult:
        """Run the generic engine on encoding #1 under the given budgets."""
        engine = Solver(
            self.encoding.model,
            var_order=_VAR_ORDERS[self.var_heuristic],
            value_order=value_order_ascending,
            seed=self.seed,
        )
        out = engine.solve(time_limit=time_limit, node_limit=node_limit)
        stats = SolverStats(
            nodes=out.stats.nodes,
            fails=out.stats.fails,
            propagations=out.stats.propagations,
            max_depth=out.stats.max_depth,
            elapsed=out.stats.elapsed,
            extra={"variables": self.encoding.n_variables},
        )
        schedule = (
            self.encoding.decode(out.solution) if out.status is Status.SAT else None
        )
        return SolveResult(
            status=_STATUS_MAP[out.status],
            schedule=schedule,
            stats=stats,
            solver_name=self.name,
        )


@register_solver(
    "csp1",
    description=(
        "Encoding #1 (a variable per in-window (task, processor, slot)) on "
        "the generic CSP engine, min-domain ordering with seeded random "
        "tie-breaking — the paper's Choco setup"
    ),
    paper_section="IV, VII-B",
    pick_when=(
        "Reproducing the paper's generic-solver columns; never for "
        "performance — it overruns and exhausts memory first (Tables I, IV)"
    ),
    capabilities=(PROVES_INFEASIBILITY, EXACT),
    suffixes={
        "dom_deg": "Same encoding, dom/deg variable ordering (ablation)",
        "input": "Same encoding, input-order variables (ablation; close to "
        "naive chronological enumeration)",
    },
    options=(),
    platforms=("identical", "uniform", "heterogeneous"),
    memory_bound=True,
    hidden_suffixes=("min_dom",),
)
def _build_csp1(system, platform, spec, seed, **options):
    """Registry factory: ``csp1[+var_heuristic]`` (suffix = variable order)."""
    return Csp1GenericSolver(
        system, platform, var_heuristic=spec.suffix or "min_dom", seed=seed,
        **options,
    )
