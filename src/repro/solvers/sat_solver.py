"""MGRTS solver backed by the CNF encoding and the CDCL engine."""

from __future__ import annotations

from repro.encodings.sat1 import encode_sat1
from repro.model.platform import Platform
from repro.model.system import TaskSystem
from repro.sat.solver import CdclSolver, SatStatus
from repro.solvers.base import Feasibility, SolveResult, SolverStats
from repro.solvers.registry import EXACT, PROVES_INFEASIBILITY, register_solver

__all__ = ["SatEncodingSolver"]

_STATUS_MAP = {
    SatStatus.SAT: Feasibility.FEASIBLE,
    SatStatus.UNSAT: Feasibility.INFEASIBLE,
    SatStatus.UNKNOWN: Feasibility.UNKNOWN,
}


class SatEncodingSolver:
    """Encode as CNF (Section IV's SAT remark), solve with CDCL.

    ``amo`` selects the at-most-one encoding: ``sequential`` (default) or
    ``pairwise`` — the ablation bench compares the two.
    """

    def __init__(
        self, system: TaskSystem, platform: Platform, amo: str = "sequential"
    ) -> None:
        self.system = system
        self.platform = platform
        self.encoding = encode_sat1(system, platform, amo=amo)
        self.name = f"sat+{amo}"

    def solve(
        self, time_limit: float | None = None, node_limit: int | None = None
    ) -> SolveResult:
        """CDCL-solve the CNF encoding (``node_limit`` caps conflicts)."""
        engine = CdclSolver(self.encoding.cnf)
        out = engine.solve(time_limit=time_limit, conflict_limit=node_limit)
        stats = SolverStats(
            nodes=out.stats.decisions,
            fails=out.stats.conflicts,
            propagations=out.stats.propagations,
            max_depth=0,
            elapsed=out.stats.elapsed,
            extra={
                "variables": self.encoding.cnf.n_vars,
                "clauses": self.encoding.cnf.n_clauses,
                "restarts": out.stats.restarts,
                "learned": out.stats.learned,
            },
        )
        schedule = self.encoding.decode(out.model) if out.is_sat else None
        return SolveResult(
            status=_STATUS_MAP[out.status],
            schedule=schedule,
            stats=stats,
            solver_name=self.name,
        )


@register_solver(
    "sat",
    description=(
        "CNF translation of encoding #1 (sequential at-most-one) on the "
        "built-in CDCL solver"
    ),
    paper_section="IV (SAT remark)",
    pick_when=(
        "Cross-checking the CSP verdicts; instances where clause learning "
        "shines. Identical platforms only"
    ),
    capabilities=(PROVES_INFEASIBILITY, EXACT),
    suffixes={
        "pairwise": "Same CNF route, pairwise at-most-one clauses (small "
        "instances only: pairwise blows up quadratically)",
    },
    options=(),
    platforms=("identical",),
    memory_bound=True,
    hidden_suffixes=("sequential",),
)
def _build_sat(system, platform, spec, seed, **options):
    """Registry factory: ``sat[+amo]`` (suffix = at-most-one encoding)."""
    return SatEncodingSolver(
        system, platform, amo=spec.suffix or "sequential", **options
    )
