"""Racing portfolio: run several solvers on one instance, keep the first
definitive answer, cancel the rest.

The paper's shoot-out (Tables I-IV) shows there is no universally best
configuration: the dedicated ``csp2+dc`` wins most races, SAT's clause
learning wins some, and local search can be fastest on big feasible
instances while never proving infeasibility.  ``portfolio:...`` turns
that observation into a solver: on a mixed workload each instance
finishes at (about) the speed of its best member.

Semantics:

* a member's FEASIBLE answer is always definitive (the schedule is
  re-validated in the parent before being trusted);
* a member's INFEASIBLE answer is definitive only when its registry
  metadata carries the ``proves_infeasibility`` capability — an
  incomplete member (``csp2-local``, ``edf``, ``fp``) can win a FEASIBLE
  race but can never decide INFEASIBLE;
* when no member is definitive within the budget the portfolio answers
  UNKNOWN (or INFEASIBLE if some capable member proved it just before
  the budget ran out — that is decisive and wins immediately).

``jobs`` controls concurrency: the default races all members at once in
worker processes (:mod:`repro.batch.racing`); ``jobs=1`` degrades to
running members sequentially in declaration order, which is fully
deterministic and useful for tests and single-core boxes.  With a fixed
seed the *verdict* is deterministic either way; under true racing the
reported winner can depend on machine load whenever two members would
both answer — the first queue message wins.
"""

from __future__ import annotations

import time

import numpy as np

from repro.batch.racing import RaceError, race
from repro.model.platform import Platform
from repro.model.system import TaskSystem
from repro.schedule.schedule import Schedule
from repro.schedule.validate import validate
from repro.solvers.base import Feasibility, SolveResult, SolverStats
from repro.solvers.registry import (
    EXACT,
    PROVES_INFEASIBILITY,
    register_solver,
    solver_info,
)
from repro.solvers.spec import SolverSpec

__all__ = ["PortfolioSolver"]


def _run_member(payload) -> dict:
    """Worker: solve one member and return a picklable result dict.

    The schedule travels as a plain int table (not a ``Schedule``) so the
    payload stays small and version-independent across the process
    boundary; the parent rebuilds and re-validates it.
    """
    from repro.solvers.registry import create_solver

    name, system, platform, seed, time_limit, node_limit = payload
    engine = create_solver(name, system, platform, seed=seed)
    result = engine.solve(time_limit=time_limit, node_limit=node_limit)
    return {
        "status": result.status.value,
        "solver_name": result.solver_name,
        "decided_by": result.decided_by,
        "table": None if result.schedule is None else result.schedule.table.tolist(),
        "stats": {
            "nodes": result.stats.nodes,
            "fails": result.stats.fails,
            "propagations": result.stats.propagations,
            "max_depth": result.stats.max_depth,
            "elapsed": result.stats.elapsed,
            "extra": result.stats.extra,
        },
    }


class PortfolioSolver:
    """Race member solvers; first definitive answer wins.

    Parameters
    ----------
    members:
        Member names or specs (at least one), raced in declaration order.
    seed:
        Forwarded to every member (fixed seed = fixed member behavior).
    jobs:
        Concurrent member processes; ``None`` races all members at once,
        ``1`` runs them sequentially in order (deterministic winner).
    """

    def __init__(
        self,
        system: TaskSystem,
        platform: Platform,
        members,
        seed: int | None = None,
        jobs: int | None = None,
    ) -> None:
        specs = tuple(SolverSpec.parse(m) for m in members)
        if not specs:
            raise ValueError("portfolio needs at least one member")
        if jobs is not None and jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.system = system
        self.platform = platform
        self.seed = seed
        self.jobs = jobs
        self.members = specs
        #: resolved up front: unknown member names fail at construction
        self._infos = [solver_info(s) for s in specs]
        for spec, info in zip(specs, self._infos):
            # capability coherence: a family claiming a complete search
            # (`exact`) must be able to prove infeasibility — otherwise its
            # INFEASIBLE answers would be silently downgraded while the
            # metadata promises they are proofs.  (The converse is fine:
            # `edf-exact` proves infeasibility on uniprocessors without
            # being complete for the feasibility question.)
            if info.is_exact and not info.proves_infeasibility:
                raise ValueError(
                    f"portfolio member {spec.canonical!r} claims the 'exact' "
                    "capability without 'proves_infeasibility'; an incomplete "
                    "solver must not claim completeness — fix its "
                    "@register_solver capabilities"
                )
        self.name = "portfolio:" + ",".join(s.canonical for s in specs)

    # -- answer classification -------------------------------------------------
    def _definitive(self, member_index: int, value) -> bool:
        """Whether a member's result ends the race."""
        if isinstance(value, RaceError) or not isinstance(value, dict):
            return False
        status = value["status"]
        if status == Feasibility.FEASIBLE.value:
            return True
        if status == Feasibility.INFEASIBLE.value:
            return self._infos[member_index].proves_infeasibility
        return False

    def _to_result(self, value: dict, elapsed: float, meta: dict) -> SolveResult:
        """Rebuild a member's result dict into a validated SolveResult."""
        status = Feasibility(value["status"])
        if (
            status is Feasibility.INFEASIBLE
            and not meta["winner_proves_infeasibility"]
        ):
            # an incomplete member may never decide INFEASIBLE
            status = Feasibility.UNKNOWN
        schedule = None
        if value["table"] is not None and status is Feasibility.FEASIBLE:
            schedule = Schedule(
                self.system,
                self.platform,
                np.array(value["table"], dtype=np.int32),
            )
            validate(schedule).raise_if_invalid()
        s = value["stats"]
        stats = SolverStats(
            nodes=s["nodes"],
            fails=s["fails"],
            propagations=s["propagations"],
            max_depth=s["max_depth"],
            elapsed=elapsed,
            extra=dict(s["extra"], portfolio=meta),
        )
        return SolveResult(
            status=status,
            schedule=schedule,
            stats=stats,
            solver_name=value["solver_name"],
            decided_by=value.get("decided_by") or value["solver_name"],
        )

    # -- public API ------------------------------------------------------------
    def solve(
        self, time_limit: float | None = None, node_limit: int | None = None
    ) -> SolveResult:
        """Race the members under a shared budget; losers are cancelled."""
        if self.jobs == 1:
            return self._solve_sequential(time_limit, node_limit)
        payloads = [
            (spec.canonical, self.system, self.platform, self.seed,
             time_limit, node_limit)
            for spec in self.members
        ]
        outcome = race(
            payloads,
            _run_member,
            decisive=self._definitive,
            jobs=self.jobs,
            time_limit=time_limit,
        )
        statuses = {
            self.members[i].canonical: (
                v["status"] if isinstance(v, dict) else f"error: {v.message}"
            )
            for i, v in outcome.results.items()
        }
        meta = {
            "members": [s.canonical for s in self.members],
            "statuses": statuses,
            "cancelled": [self.members[i].canonical for i in outcome.cancelled],
            "not_started": [
                self.members[i].canonical for i in outcome.not_started
            ],
            "mode": "race",
        }
        if outcome.winner is not None:
            value = outcome.results[outcome.winner]
            meta["winner"] = self.members[outcome.winner].canonical
            meta["winner_proves_infeasibility"] = self._infos[
                outcome.winner
            ].proves_infeasibility
            return self._to_result(value, outcome.elapsed, meta)
        return self._no_winner(outcome.elapsed, meta)

    def _solve_sequential(
        self, time_limit: float | None, node_limit: int | None
    ) -> SolveResult:
        """jobs=1 fallback: members in order, remaining budget each."""
        t0 = time.monotonic()
        statuses: dict[str, str] = {}
        meta = {
            "members": [s.canonical for s in self.members],
            "statuses": statuses,
            "cancelled": [],
            "not_started": [],
            "mode": "sequential",
        }

        def finalize() -> None:
            meta["not_started"] = [
                s.canonical for s in self.members if s.canonical not in statuses
            ]

        for index, spec in enumerate(self.members):
            remaining = None
            if time_limit is not None:
                remaining = time_limit - (time.monotonic() - t0)
                if remaining <= 0:
                    break
            value = _run_member(
                (spec.canonical, self.system, self.platform, self.seed,
                 remaining, node_limit)
            )
            statuses[spec.canonical] = value["status"]
            if self._definitive(index, value):
                meta["winner"] = spec.canonical
                meta["winner_proves_infeasibility"] = self._infos[
                    index
                ].proves_infeasibility
                finalize()
                return self._to_result(value, time.monotonic() - t0, meta)
        finalize()
        return self._no_winner(time.monotonic() - t0, meta)

    def _no_winner(self, elapsed: float, meta: dict) -> SolveResult:
        """Aggregate UNKNOWN when no member was definitive in budget."""
        stats = SolverStats(elapsed=elapsed, extra={"portfolio": meta})
        return SolveResult(
            status=Feasibility.UNKNOWN,
            schedule=None,
            stats=stats,
            solver_name=self.name,
        )


@register_solver(
    "portfolio",
    description=(
        "Racing meta-solver: runs member solvers concurrently in worker "
        "processes, keeps the first definitive answer, cancels the rest "
        "(incomplete members may win FEASIBLE races but never decide "
        "INFEASIBLE)"
    ),
    paper_section="VII (the shoot-out, turned into a solver)",
    pick_when=(
        "Mixed workloads where no single configuration dominates: each "
        "instance finishes at about the speed of its best member"
    ),
    capabilities=(PROVES_INFEASIBILITY, EXACT),
    suffixes={},
    options=("jobs",),
    platforms=("identical", "uniform", "heterogeneous"),
    advertise=False,
)
def _build_portfolio(system, platform, spec, seed, **options):
    """Registry factory: ``portfolio:NAME,NAME,...``."""
    return PortfolioSolver(system, platform, spec.members, seed=seed, **options)
