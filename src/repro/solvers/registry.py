"""Named solver configurations (the columns of Tables I, II and IV)."""

from __future__ import annotations

from collections.abc import Callable

from repro.model.platform import Platform
from repro.model.system import TaskSystem

__all__ = ["available_solvers", "make_solver", "PAPER_SOLVERS"]

#: the six configurations the paper's experiments compare (Table I order)
PAPER_SOLVERS = ["csp1", "csp2", "csp2+rm", "csp2+dm", "csp2+tc", "csp2+dc"]


def _parse_heuristic(suffix: str) -> str:
    from repro.solvers.ordering import heuristic_key

    heuristic_key(suffix)  # validates / raises
    return suffix


def make_solver(
    name: str,
    system: TaskSystem,
    platform: Platform,
    seed: int | None = None,
    **options,
):
    """Instantiate a solver by name.

    Names::

        csp1[+min_dom|+dom_deg|+input]   generic engine on encoding #1
        csp2[+rm|+dm|+tc|+dc]            dedicated chronological solver
        csp2-generic[+rm|+dm|+tc|+dc]    generic engine on encoding #2
        csp2-local                       min-conflicts local search (never
                                         proves infeasibility; future work
                                         of the paper, Section VIII)
        sat[+pairwise|+sequential]       CNF encoding + CDCL solver

    ``seed`` feeds the randomized tie-breaking of ``csp1`` (the generic
    solver's randomized default strategy, Section VII-B); extra keyword
    options are forwarded to the solver class (e.g. ``symmetry_breaking``,
    ``idle_rule``, ``demand_pruning``, ``energetic_pruning``).
    """
    from repro.solvers.csp1_generic import Csp1GenericSolver
    from repro.solvers.csp2_dedicated import Csp2DedicatedSolver
    from repro.solvers.csp2_generic import Csp2GenericSolver
    from repro.solvers.csp2_local import Csp2LocalSearchSolver
    from repro.solvers.sat_solver import SatEncodingSolver

    key = name.strip().lower()
    base, _, suffix = key.partition("+")
    if base == "csp2-local":
        return Csp2LocalSearchSolver(
            system, platform, seed=seed if seed is not None else 0, **options
        )
    if base == "csp1":
        return Csp1GenericSolver(
            system, platform, var_heuristic=suffix or "min_dom", seed=seed, **options
        )
    if base == "csp2":
        return Csp2DedicatedSolver(
            system, platform, heuristic=_parse_heuristic(suffix) if suffix else None, **options
        )
    if base == "csp2-generic":
        return Csp2GenericSolver(
            system, platform, heuristic=_parse_heuristic(suffix) if suffix else None, **options
        )
    if base == "sat":
        return SatEncodingSolver(system, platform, amo=suffix or "sequential", **options)
    raise ValueError(f"unknown solver {name!r}; try one of {available_solvers()}")


def available_solvers() -> list[str]:
    """Canonical names accepted by :func:`make_solver`."""
    return PAPER_SOLVERS + [
        "csp1+dom_deg",
        "csp1+input",
        "csp2-generic",
        "csp2-generic+rm",
        "csp2-generic+dm",
        "csp2-generic+tc",
        "csp2-generic+dc",
        "csp2-local",
        "sat",
        "sat+pairwise",
    ]
