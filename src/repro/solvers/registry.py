"""Declarative solver registry: plugins register themselves by name.

Instead of a hard-coded if/elif chain, every solver family —
the paper's configurations, this reproduction's extras, the baseline
schedulers, and any future backend — registers a factory under a base
name with :func:`register_solver`::

    @register_solver(
        "csp2",
        description="dedicated chronological solver",
        paper_section="V",
        capabilities=(PROVES_INFEASIBILITY, EXACT),
        suffixes={"rm": "...", "dm": "...", "tc": "...", "dc": "..."},
        options=("symmetry_breaking", "idle_rule"),
    )
    def _make(system, platform, spec, seed, **options): ...

Names are parsed by :class:`repro.solvers.spec.SolverSpec` (``base`` or
``base+suffix``, plus ``portfolio:a,b`` for the racing meta-solver), and
:func:`create_solver` resolves a spec to an engine instance, rejecting
unknown keyword options with the plugin's accepted list in the message.
Everything downstream — :func:`available_solvers`, the ``repro-mgrts
solvers`` subcommand, and docs/SOLVERS.md (via
:mod:`repro.solvers.docs`) — derives from the same metadata.

The historical ``make_solver`` deprecation shim was removed in PR 5
(it had warned since PR 2); :func:`create_solver` is a drop-in
replacement with the same call shape.
"""

from __future__ import annotations

from collections.abc import Callable, Mapping
from dataclasses import dataclass, field
from types import MappingProxyType

from repro.model.platform import Platform
from repro.model.system import TaskSystem
from repro.solvers.spec import SolverSpec

__all__ = [
    "PROVES_INFEASIBILITY",
    "EXACT",
    "SolverInfo",
    "register_solver",
    "solver_info",
    "iter_solver_info",
    "create_solver",
    "available_solvers",
    "is_solver_name",
    "PAPER_SOLVERS",
]

#: capability: an INFEASIBLE answer from this solver is a proof
PROVES_INFEASIBILITY = "proves_infeasibility"
#: capability: given enough budget the solver always reaches a verdict
#: (complete search; local search and simulation baselines lack this)
EXACT = "exact"

#: the six configurations the paper's experiments compare (Table I order)
PAPER_SOLVERS = ["csp1", "csp2", "csp2+rm", "csp2+dm", "csp2+tc", "csp2+dc"]


@dataclass(frozen=True)
class SolverInfo:
    """Registry metadata for one solver family (one base name).

    Attributes
    ----------
    base:
        The registry key (``"csp2"`` serves ``csp2``, ``csp2+rm``, ...).
    factory:
        ``factory(system, platform, spec, seed, **options) -> engine``.
    description:
        One-line "what it is" (drives docs/SOLVERS.md and the CLI).
    paper_section:
        Where the paper discusses it (empty for pure extensions).
    pick_when:
        One-line "pick it when" guidance.
    capabilities:
        Frozen set of capability strings (:data:`PROVES_INFEASIBILITY`,
        :data:`EXACT`, ...).
    suffixes:
        Advertised ``+suffix`` variants mapped to their row description;
        a factory may accept more (e.g. default-valued spellings).
    options:
        Keyword options the factory accepts; anything else is rejected
        by :func:`create_solver` with this list in the error message.
    hidden_suffixes:
        Suffixes accepted but not advertised (default-valued spellings
        like ``csp1+min_dom`` / ``sat+sequential``, paper-style aliases
        like ``csp2+d-c``).  Any suffix outside ``suffixes`` and
        ``hidden_suffixes`` is rejected by :func:`create_solver`.
    platforms:
        Supported platform kinds, subset of
        ``("identical", "uniform", "heterogeneous")``.
    memory_bound:
        True for solvers whose model size is predicted by
        ``estimate_generic_variables`` and guarded by the batch layer's
        variable limit (the generic-engine and CNF encodings).
    advertise:
        Whether the family's names appear in :func:`available_solvers`
        (the portfolio meta-solver does not: it has no standalone name).
    """

    base: str
    factory: Callable
    description: str
    paper_section: str = ""
    pick_when: str = ""
    capabilities: frozenset = field(default_factory=frozenset)
    suffixes: Mapping[str, str] = field(default_factory=dict)
    options: tuple[str, ...] = ()
    platforms: tuple[str, ...] = ("identical", "uniform", "heterogeneous")
    memory_bound: bool = False
    advertise: bool = True
    hidden_suffixes: tuple[str, ...] = ()

    def accepts_suffix(self, suffix: str | None) -> bool:
        """Whether ``base+suffix`` is a valid name of this family."""
        if suffix is None:
            return True
        return suffix in self.suffixes or suffix in self.hidden_suffixes

    @property
    def proves_infeasibility(self) -> bool:
        """Whether an INFEASIBLE verdict from this family is a proof."""
        return PROVES_INFEASIBILITY in self.capabilities

    @property
    def is_exact(self) -> bool:
        """Whether the family runs a complete search."""
        return EXACT in self.capabilities

    def names(self) -> list[str]:
        """The canonical names this family serves (base + each suffix)."""
        return [self.base] + [f"{self.base}+{s}" for s in self.suffixes]


#: base name -> SolverInfo
_REGISTRY: dict[str, SolverInfo] = {}

#: base name -> first-registration sequence number (ordering for
#: third-party plugins, which follow the built-in families)
_SEQ: dict[str, int] = {}

#: presentation order of the built-in families; anything else appears
#: after, in first-registration order.  Listing is pinned here (not to
#: dict insertion) because solver modules may be imported in any order —
#: a test importing ``csp2_dedicated`` directly must not reshuffle
#: ``available_solvers()`` or the generated docs.
_CANONICAL_ORDER = (
    "csp1",
    "csp2",
    "csp2-generic",
    "csp2-local",
    "sat",
    "portfolio",
    "screen",
    "edf",
    "edf-exact",
    "fp",
)


def _order_key(base: str) -> tuple[int, int]:
    try:
        return (0, _CANONICAL_ORDER.index(base))
    except ValueError:
        return (1, _SEQ.get(base, 0))

#: modules that register the built-in solver families, in the order their
#: names should appear; imported lazily on first registry use so that
#: ``import repro`` stays cheap
_BUILTIN_PLUGINS = (
    "repro.solvers.csp1_generic",
    "repro.solvers.csp2_dedicated",
    "repro.solvers.csp2_generic",
    "repro.solvers.csp2_local",
    "repro.solvers.sat_solver",
    "repro.solvers.portfolio",
    "repro.analysis.cascade",
    "repro.baselines.registered",
    "repro.baselines.edf_exact",
)
_loaded_builtins = False


def _load_builtins() -> None:
    global _loaded_builtins
    if not _loaded_builtins:
        _loaded_builtins = True
        import importlib

        for module in _BUILTIN_PLUGINS:
            importlib.import_module(module)


def register_solver(
    base: str,
    *,
    description: str,
    paper_section: str = "",
    pick_when: str = "",
    capabilities: tuple = (),
    suffixes: Mapping[str, str] | None = None,
    options: tuple[str, ...] = (),
    platforms: tuple[str, ...] = ("identical", "uniform", "heterogeneous"),
    memory_bound: bool = False,
    advertise: bool = True,
    hidden_suffixes: tuple[str, ...] = (),
) -> Callable:
    """Class/function decorator registering a solver factory under ``base``.

    The decorated callable is invoked as
    ``factory(system, platform, spec, seed, **options)`` where ``spec`` is
    the parsed :class:`~repro.solvers.spec.SolverSpec` (so the factory
    reads its own suffix) and ``options`` has already been validated
    against the declared ``options`` tuple.  Re-registering a base name
    replaces the previous entry (last one wins), which lets tests and
    downstream code override a family.
    """

    def decorator(factory: Callable) -> Callable:
        _SEQ.setdefault(base, len(_SEQ))
        _REGISTRY[base] = SolverInfo(
            base=base,
            factory=factory,
            description=description,
            paper_section=paper_section,
            pick_when=pick_when,
            capabilities=frozenset(capabilities),
            suffixes=MappingProxyType(dict(suffixes or {})),
            options=tuple(options),
            platforms=tuple(platforms),
            memory_bound=memory_bound,
            advertise=advertise,
            hidden_suffixes=tuple(hidden_suffixes),
        )
        return factory

    return decorator


def solver_info(name: "str | SolverSpec") -> SolverInfo:
    """Resolve a name (or spec) to its family's registry metadata."""
    _load_builtins()
    spec = SolverSpec.parse(name)
    try:
        return _REGISTRY[spec.base]
    except KeyError:
        raise ValueError(
            f"unknown solver {spec.canonical!r}; try one of {available_solvers()}"
        ) from None


def iter_solver_info() -> list[SolverInfo]:
    """All registered families, in canonical presentation order.

    Built-in families come first in their documented order; third-party
    registrations follow in first-registration order.  The listing does
    not depend on which module happened to be imported first.
    """
    _load_builtins()
    return sorted(_REGISTRY.values(), key=lambda info: _order_key(info.base))


def _check_suffix(info: SolverInfo, spec: SolverSpec) -> None:
    """Reject a suffix the family does not declare (fail fast, by name)."""
    if not info.accepts_suffix(spec.suffix):
        accepted = sorted(set(info.suffixes) | set(info.hidden_suffixes))
        detail = f"accepted suffixes: {', '.join(accepted)}" if accepted else (
            f"{info.base!r} takes no +suffix"
        )
        raise ValueError(
            f"unknown suffix {spec.suffix!r} in solver name "
            f"{spec.canonical!r}; {detail}"
        )


def _walk_spec(spec: SolverSpec):
    """The spec and every nested member (portfolio members, a screen's
    inner solver, a screened portfolio's members, ...)."""
    yield spec
    for member in spec.members:
        yield from _walk_spec(member)


def is_solver_name(name: str) -> bool:
    """Whether ``name`` parses and fully resolves — base *and* suffix,
    portfolio/screen members included."""
    try:
        spec = SolverSpec.parse(name)
        for part in _walk_spec(spec):
            _check_suffix(solver_info(part), part)
    except ValueError:
        return False
    return True


def create_solver(
    name: "str | SolverSpec",
    system: TaskSystem,
    platform: Platform,
    seed: int | None = None,
    **options,
):
    """Instantiate a solver engine from a name or parsed spec.

    Names::

        csp1[+min_dom|+dom_deg|+input]   generic engine on encoding #1
        csp2[+rm|+dm|+tc|+dc]            dedicated chronological solver
        csp2-generic[+rm|+dm|+tc|+dc]    generic engine on encoding #2
        csp2-local                       min-conflicts local search (never
                                         proves infeasibility)
        sat[+pairwise|+sequential]       CNF encoding + CDCL solver
        edf / fp[+rm|+dm|+tc|+dc]        priority-simulation baselines
        portfolio:NAME,NAME,...          race members, first definitive
                                         answer wins (cancels the rest)
        screen[+NAME]                    polynomial screening cascade;
                                         abstentions fall through to NAME

    ``seed`` feeds randomized strategies (``csp1`` tie-breaking,
    ``csp2-local`` restarts); solvers without randomness ignore it.
    Extra keyword ``options`` are validated against the plugin's declared
    option names — a typo raises ``ValueError`` naming the accepted ones
    instead of disappearing into a constructor.
    """
    spec = SolverSpec.parse(name)
    info = solver_info(spec)
    for part in _walk_spec(spec):
        _check_suffix(solver_info(part), part)
    unknown = sorted(set(options) - set(info.options))
    if unknown:
        accepted = ", ".join(info.options) if info.options else "none"
        raise ValueError(
            f"unknown option(s) {unknown} for solver {spec.canonical!r}; "
            f"accepted options: {accepted}"
        )
    return info.factory(system, platform, spec, seed, **options)


def available_solvers() -> list[str]:
    """Canonical names accepted by :func:`create_solver`, registry-derived.

    Portfolio names are compositional (``portfolio:csp2+dc,sat``) and so
    not listed; every listed name instantiates standalone.
    """
    out: list[str] = []
    for info in iter_solver_info():
        if info.advertise:
            out.extend(info.names())
    return out
