"""CSP2 solved by the generic engine.

The paper solves CSP2 with a dedicated C++ search
(:mod:`repro.solvers.csp2_dedicated` is that reproduction); this module
additionally runs the *same encoding* on the generic engine, which is the
natural ablation separating "better encoding" from "better search":
chronological (input-order) branching over slot-major variables, the
RM/DM/(T-C)/(D-C) task value orders with idle ranked last, and the
symmetry chains posted as real constraints.

With ``learn=True`` the engine switches to conflict-directed search —
1-UIP nogood learning over the window-count/alldifferent/symmetry
propagators (all of which ship real ``explain_event`` implementations),
conflict-driven backjumping, last-conflict variable ordering layered on
the chronological order, and phase-saved values.  The registry exposes
it as ``csp2-generic+learn`` and, with the (D-C) value order the paper
found strongest, as ``csp2+learn``.
"""

from __future__ import annotations

from repro.csp.heuristics import (
    make_var_order_last_conflict,
    value_order_custom,
    var_order_input,
    var_order_min_domain,
)
from repro.csp.search import Solver, Status
from repro.encodings.csp2 import encode_csp2
from repro.model.platform import Platform
from repro.model.system import TaskSystem
from repro.solvers.base import (
    Feasibility,
    SolveResult,
    SolverStats,
    learning_extra_stats,
)
from repro.solvers.ordering import task_order
from repro.solvers.registry import EXACT, PROVES_INFEASIBILITY, register_solver

__all__ = ["Csp2GenericSolver"]

_STATUS_MAP = {
    Status.SAT: Feasibility.FEASIBLE,
    Status.UNSAT: Feasibility.INFEASIBLE,
    Status.UNKNOWN: Feasibility.UNKNOWN,
}


class Csp2GenericSolver:
    """Encode as CSP2, solve with the generic backtracking engine.

    Parameters
    ----------
    heuristic:
        Task value order: None (task-index order), ``rm``, ``dm``, ``tc``
        or ``dc``.  The idle value is always tried last.
    symmetry_breaking:
        Post the NonDecreasing chains (paper rule (10)/(13)).
    chronological:
        Branch in variable creation order (slot-major); when False, fall
        back to min-domain (ablation).
    learn:
        Switch to the conflict-directed engine: nogood learning,
        backjumping, last-conflict ordering over the base variable
        order, and phase-saved values.
    nogood_limit:
        Learned-nogood store capacity (learning only).
    vectorize:
        Forwarded to the engine: None (auto) batches the counting
        propagators and shadows domains when numpy is available, False
        forces the legacy per-propagator path, True insists on the
        kernels.  Search decisions are byte-identical either way.
    """

    def __init__(
        self,
        system: TaskSystem,
        platform: Platform,
        heuristic: str | None = None,
        symmetry_breaking: bool = True,
        chronological: bool = True,
        learn: bool = False,
        nogood_limit: int = 10_000,
        vectorize: bool | None = None,
    ) -> None:
        self.system = system
        self.platform = platform
        self.heuristic = heuristic
        self.encoding = encode_csp2(system, platform, symmetry_breaking)
        self.chronological = chronological
        self.learn = bool(learn)
        self.nogood_limit = nogood_limit
        self.vectorize = vectorize
        order = task_order(system, heuristic)
        order.append(self.encoding.idle_value)  # idle last
        self._value_order = value_order_custom(order)
        self.name = f"csp2-generic{'+' + heuristic if heuristic else ''}"
        if self.learn:
            self.name += "+learn"

    def solve(
        self, time_limit: float | None = None, node_limit: int | None = None
    ) -> SolveResult:
        """Run the generic engine on encoding #2 under the given budgets."""
        base_order = (
            var_order_input if self.chronological else var_order_min_domain
        )
        if self.learn:
            engine = Solver(
                self.encoding.model,
                var_order=make_var_order_last_conflict(base_order),
                value_order=self._value_order,
                learn=True,
                nogood_limit=self.nogood_limit,
                phase_saving=True,
            )
        else:
            engine = Solver(
                self.encoding.model,
                var_order=base_order,
                value_order=self._value_order,
                vectorize=self.vectorize,
            )
        out = engine.solve(time_limit=time_limit, node_limit=node_limit)
        extra = {"variables": self.encoding.n_variables}
        if self.learn:
            extra.update(learning_extra_stats(out.stats))
        stats = SolverStats(
            nodes=out.stats.nodes,
            fails=out.stats.fails,
            propagations=out.stats.propagations,
            max_depth=out.stats.max_depth,
            elapsed=out.stats.elapsed,
            extra=extra,
        )
        schedule = (
            self.encoding.decode(out.solution) if out.status is Status.SAT else None
        )
        return SolveResult(
            status=_STATUS_MAP[out.status],
            schedule=schedule,
            stats=stats,
            solver_name=self.name,
        )


@register_solver(
    "csp2-generic",
    description=(
        "Encoding #2 on the *generic* engine with the same RM/DM/(T-C)/"
        "(D-C) value orders as the dedicated solver"
    ),
    paper_section="V",
    pick_when=(
        "Isolating how much the dedicated machinery (idle rule, symmetry, "
        "prunings) buys over the bare encoding"
    ),
    capabilities=(PROVES_INFEASIBILITY, EXACT),
    suffixes={
        "rm": "Generic engine on encoding #2, rate-monotonic value order",
        "dm": "Generic engine on encoding #2, deadline-monotonic value order",
        "tc": "Generic engine on encoding #2, smallest T-C value order",
        "dc": "Generic engine on encoding #2, smallest D-C value order",
        "learn": "Encoding #2 on the conflict-directed engine (task-index "
        "value order); see csp2+learn for the (D-C)-ordered variant",
    },
    options=("symmetry_breaking", "chronological", "nogood_limit", "vectorize"),
    platforms=("identical", "uniform", "heterogeneous"),
    memory_bound=True,
    hidden_suffixes=("t-c", "(t-c)", "d-c", "(d-c)", "none", "vec"),
)
def _build_csp2_generic(system, platform, spec, seed, **options):
    """Registry factory: ``csp2-generic[+heuristic|+learn|+vec]``."""
    from repro.solvers.ordering import heuristic_key

    if spec.suffix == "learn":
        return Csp2GenericSolver(system, platform, learn=True, **options)
    if "nogood_limit" in options:
        raise ValueError(
            "nogood_limit only applies to the learning variant; "
            f"use '{spec.base}+learn'"
        )
    if spec.suffix == "vec":  # insist on the vectorised kernels
        options.setdefault("vectorize", True)
        return Csp2GenericSolver(system, platform, **options)
    if spec.suffix:
        heuristic_key(spec.suffix)  # validates / raises
    return Csp2GenericSolver(system, platform, heuristic=spec.suffix, **options)
