"""Command-line interface: ``repro-mgrts`` (or ``python -m repro.cli``).

Subcommands
-----------
``generate``    sample random instances (Section VII-A) to a JSON file
``solve``       solve one instance (from a JSON file or inline tuples)
``analyze``     run the polynomial-time screening cascade (no search)
``difftest``    differentially fuzz a set of solvers against each other
                (seeded grid, witness validation, counterexample shrinking)
``lint``        run the contract-aware static analyzer (determinism,
                explain-contract, registry, pickle and trail safety)
``solvers``     list every registered solver with its metadata
``validate``    re-check a solved schedule JSON against C1-C4
``figure1``     print the paper's Figure 1 chart
``experiment``  reproduce table1 / table2 / table3 / table4
``batch``       run an (instance x solver) campaign in parallel with
                caching and crash-safe ``--resume``
``serve``       run the solver service daemon (JSONL over TCP or stdio)
``submit``      stream a problem set through a running daemon
``journal``     journal utilities (``merge``: N shard journals -> one
                canonical-order journal, last-line-wins)

``--solver`` values are registry names (see ``repro-mgrts solvers``),
including racing portfolios such as ``portfolio:csp2+dc,sat`` and
screened pipelines such as ``screen+csp2+dc``.

Instance JSON format::

    {"tasks": [[O, C, D, T], ...], "m": 2}

Schedule JSON (produced by ``solve --output``) adds ``"table"`` (m x T,
-1 = idle).  ``batch`` streams one JSONL line per completed
(instance, solver) cell to ``--output``.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.experiments.report import (
    format_table1,
    format_table2,
    format_table3,
    format_table4,
)
from repro.generator.random_systems import GeneratorConfig, generate_instances
from repro.model.platform import Platform
from repro.model.system import TaskSystem
from repro.schedule.io import (
    dump_json,
    load_instance,
    schedule_from_dict,
    schedule_to_dict,
    system_to_dict,
)
from repro.schedule.render import render_gantt
from repro.schedule.validate import validate as validate_schedule
from repro.solvers.api import solve as api_solve
from repro.solvers.registry import available_solvers, is_solver_name, iter_solver_info

__all__ = ["main"]


def _load_instance(path: str) -> tuple[TaskSystem, Platform]:
    with open(path) as fh:
        return load_instance(json.load(fh))


def _cmd_generate(args: argparse.Namespace) -> int:
    cfg = GeneratorConfig(
        n=args.n, tmax=args.tmax,
        m=args.m if args.m is not None else "uniform",
        order=args.order, offsets=args.offsets,
    )
    instances = generate_instances(cfg, args.count, seed=args.seed)
    payload = [
        {"tasks": [list(t.as_tuple()) for t in inst.system], "m": inst.m,
         "seed": inst.seed}
        for inst in instances
    ]
    out = json.dumps(payload if args.count != 1 else payload[0], indent=2)
    if args.output:
        with open(args.output, "w") as fh:
            fh.write(out + "\n")
        print(f"wrote {args.count} instance(s) to {args.output}")
    else:
        print(out)
    return 0


def _bad_solver(name: str) -> bool:
    """Report (and reject) a name the registry cannot resolve."""
    if not is_solver_name(name):
        print(
            f"unknown solver {name!r}; pick from {available_solvers()} "
            "(or a portfolio:NAME,NAME,... of them)",
            file=sys.stderr,
        )
        return True
    return False


def _cmd_solvers(args: argparse.Namespace) -> int:
    """List every registered solver family with its registry metadata."""
    infos = [i for i in iter_solver_info() if i.advertise or args.all]
    if args.json:
        # service clients discover what a server can run from this
        # payload; keep additions additive (consumers pin fields)
        from repro.kernels import kernel_availability

        payload = {
            "solvers": [
                {
                    "base": info.base,
                    "names": info.names(),
                    "description": info.description,
                    "paper_section": info.paper_section,
                    "pick_when": info.pick_when,
                    "capabilities": sorted(info.capabilities),
                    "options": list(info.options),
                    "platforms": list(info.platforms),
                    "suffixes": dict(info.suffixes),
                    "memory_bound": info.memory_bound,
                }
                for info in infos
            ],
            "kernels": kernel_availability(),
        }
        print(json.dumps(payload, indent=2))
        return 0
    for info in infos:
        caps = ", ".join(sorted(info.capabilities)) or "incomplete (FEASIBLE/UNKNOWN only)"
        print(f"{' / '.join(info.names())}")
        print(f"    {info.description}")
        if info.paper_section:
            print(f"    paper: {info.paper_section}")
        print(f"    capabilities: {caps}")
        print(f"    platforms: {', '.join(info.platforms)}")
        if info.options:
            print(f"    options: {', '.join(info.options)}")
        if info.pick_when:
            print(f"    pick when: {info.pick_when}")
        print()
    print("portfolio:NAME,NAME,...  races any of the above; first definitive answer wins")
    return 0


def _cmd_solve(args: argparse.Namespace) -> int:
    if _bad_solver(args.solver):
        return 2
    system, platform = _load_instance(args.instance)
    if args.min_processors:
        from repro.solvers.min_processors import find_min_processors

        res_min = find_min_processors(
            system, solver=args.solver, time_limit_per_m=args.time_limit
        )
        for tried_m, status in res_min.attempts.items():
            provenance = res_min.decided_by.get(tried_m)
            tail = f"  (decided by {provenance})" if provenance else ""
            print(f"m={tried_m}: {status.value}{tail}")
        if res_min.found:
            kind = "exact minimum" if res_min.exact else "upper bound"
            print(f"smallest sufficient m = {res_min.m} ({kind})")
            if res_min.result.schedule is not None:
                print(render_gantt(res_min.result.schedule))
            return 0
        print("no sufficient m found within the budget")
        return 2
    res = api_solve(
        system,
        platform=platform,
        solver=args.solver,
        time_limit=args.time_limit,
        seed=args.seed,
    )
    print(f"status: {res.status.value}")
    print(
        f"solver: {args.solver}  nodes: {res.stats.nodes}  "
        f"elapsed: {res.stats.elapsed:.3f}s"
    )
    if res.schedule is not None:
        print(render_gantt(res.schedule))
        if args.output:
            with open(args.output, "w") as fh:
                fh.write(dump_json(schedule_to_dict(res.schedule)))
            print(f"wrote schedule to {args.output}")
    return 0 if res.status.value != "unknown" else 2


def _cmd_analyze(args: argparse.Namespace) -> int:
    """Run the polynomial-time screening cascade on one instance.

    Prints each certificate in cascade order and the overall verdict
    with its provenance; never invokes exact search.  Arbitrary-deadline
    instances are cloned up front (Section VI-B, feasibility-preserving)
    and flagged, so the witnesses' task indices are unambiguous: they
    refer to the printed clone count.  Exit code 0 when a certificate
    decided the instance, 2 when every test abstained (the exact solvers
    are needed), mirroring ``solve``'s unknown-exit.
    """
    from repro.analysis import run_cascade
    from repro.model.transform import clone_for_arbitrary_deadlines

    system, platform = _load_instance(args.instance)
    m = args.m if args.m is not None else platform.m
    if m < 1:
        print(f"-m must be >= 1, got {m}", file=sys.stderr)
        return 2
    cloned = False
    if not system.is_constrained:
        original_n = system.n
        system, _ = clone_for_arbitrary_deadlines(system)
        cloned = True
        if not args.json:
            print(
                f"note: arbitrary deadlines; analyzing the constrained "
                f"clone ({original_n} tasks -> {system.n} clones, "
                "Section VI-B) — witness task indices refer to clones"
            )
    outcome = run_cascade(system, m, simulate=not args.no_simulate)
    if args.json:
        payload = outcome.to_dict()
        payload["cloned"] = cloned
        print(json.dumps(payload, indent=2))
        return 0 if outcome.decided is not None else 2
    for cert in outcome.certificates:
        print(str(cert))
    if outcome.decided is not None:
        print(
            f"verdict: {outcome.verdict.value} "
            f"(decided by {outcome.decided.test_name}, "
            f"{len(outcome.certificates)} test(s), "
            f"{outcome.elapsed * 1e3:.2f} ms)"
        )
        if args.show_schedule and outcome.decided.schedule is not None:
            print(render_gantt(outcome.decided.schedule))
        return 0
    print(
        f"verdict: unknown — every test abstained "
        f"({len(outcome.certificates)} run, {outcome.elapsed * 1e3:.2f} ms); "
        "use `solve` (or the screen+NAME solver) for an exact answer"
    )
    return 2


def _cmd_difftest(args: argparse.Namespace) -> int:
    """Differentially test solvers on a seeded generator grid.

    Every instance is solved by every ``--solvers`` member; verdicts are
    cross-checked capability-aware, witness schedules are re-validated
    against C1-C4, and any finding is shrunk to a 1-minimal
    counterexample (disable with ``--no-shrink``).  ``--artifacts``
    writes a JSONL trail with full SolveReport provenance.  Exit code 0
    on a clean run, 1 when any finding survived, 2 on bad usage.
    """
    from repro.difftest import DiffTestConfig, run_difftest, write_artifacts

    if _invalid_jobs(args):
        return 2
    solvers = _split_solver_list(args.solvers)
    if not solvers:
        print(f"--solvers is empty; pick from {available_solvers()}",
              file=sys.stderr)
        return 2
    if any(_bad_solver(s) for s in solvers):
        return 2
    config = DiffTestConfig(
        solvers=tuple(solvers),
        instances=args.instances,
        seed=args.seed,
        n=args.n,
        tmax=args.tmax,
        m=args.m if args.m is not None else "uniform",
        time_limit=args.time_limit,
        shrink=not args.no_shrink,
        jobs=args.jobs,
    )
    progress = _progress_printer(args, "cell")
    report = run_difftest(config, progress=progress)
    if not args.quiet:
        print(file=sys.stderr)
    if args.artifacts:
        write_artifacts(args.artifacts, report)
    if args.json:
        print(json.dumps(report.to_dict(), indent=2))
    else:
        print(report.summary())
        if args.artifacts:
            print(f"artifacts written to {args.artifacts}")
    return 0 if report.ok else 1


def _cmd_lint(args: argparse.Namespace) -> int:
    """Run the contract-aware static analyzer over the repo.

    Exit code 0 when clean (no unbaselined findings), 1 when findings
    remain, 2 on an engine error (bad path, syntax error, malformed
    baseline).  ``--json`` emits the machine-readable report;
    ``--list-rules`` prints the registered rules and exits.
    """
    from repro.lint import LintError, iter_rules, run_lint

    if args.list_rules:
        rules = iter_rules()
        if args.json:
            print(json.dumps([
                {
                    "id": r.id,
                    "family": r.family,
                    "description": r.description,
                    "contract": r.contract,
                    "scope": list(r.scope),
                }
                for r in rules
            ], indent=2))
        else:
            width = max(len(r.id) for r in rules)
            for r in rules:
                print(f"{r.id:<{width}}  [{r.family}] {r.description}")
        return 0
    try:
        report = run_lint(
            args.root, targets=args.paths or None, baseline=args.baseline
        )
    except LintError as exc:
        print(f"lint: {exc}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(report.to_dict(), indent=2))
    else:
        print(report.render_text())
    return 0 if report.ok else 1


def _cmd_validate(args: argparse.Namespace) -> int:
    with open(args.schedule) as fh:
        sched = schedule_from_dict(json.load(fh))
    result = validate_schedule(sched)
    if result.ok:
        print("schedule is feasible (C1-C4 hold)")
        return 0
    print(f"schedule violates {len(result.violations)} constraint(s):")
    for v in result.violations:
        print(f"  {v}")
    return 1


def _cmd_figure1(args: argparse.Namespace) -> int:
    from repro.experiments.figure1 import figure1

    if args.instance:
        system, _ = _load_instance(args.instance)
        print(figure1(system))
    else:
        print(figure1())
    return 0


def _invalid_jobs(args: argparse.Namespace) -> bool:
    """Report (and reject) a non-positive --jobs value."""
    if args.jobs < 1:
        print(f"--jobs must be >= 1, got {args.jobs}", file=sys.stderr)
        return True
    return False


def _progress_printer(args: argparse.Namespace, noun: str):
    """A carriage-return progress callback on stderr (None when --quiet)."""
    if args.quiet:
        return None

    def progress(done, total):
        print(f"\r  {noun} {done}/{total}", end="", file=sys.stderr, flush=True)

    return progress


def _split_solver_list(text: str) -> list[str]:
    """Split a ``--solvers`` value without breaking portfolio names.

    Portfolio names contain commas (``portfolio:csp2+dc,sat``), so a
    plain comma split would shred them.  Rules: ``;`` — when present —
    is the top-level separator (``csp1;portfolio:csp2+dc,sat``); a value
    containing ``portfolio:`` but no ``;`` is one single name; anything
    else splits on commas as it always has.
    """
    if ";" in text:
        parts = text.split(";")
    elif "portfolio:" in text:
        parts = [text]
    else:
        parts = text.split(",")
    return [s.strip() for s in parts if s.strip()]


def _cmd_batch(args: argparse.Namespace) -> int:
    """Run an (instance x solver) campaign through the batch layer."""
    from repro.batch import cells_for_matrix, run_batch
    from repro.generator.random_systems import Instance

    if _invalid_jobs(args):
        return 2
    solvers = _split_solver_list(args.solvers)
    if not solvers:
        print(f"--solvers is empty; pick from {available_solvers()}",
              file=sys.stderr)
        return 2
    if any(_bad_solver(s) for s in solvers):
        return 2
    if args.instances_file:
        with open(args.instances_file) as fh:
            payload = json.load(fh)
        if isinstance(payload, dict):
            payload = [payload]
        instances = [
            Instance(
                system=TaskSystem.from_tuples(d["tasks"]),
                m=d.get("m", 1),
                seed=d.get("seed", i),
            )
            for i, d in enumerate(payload)
        ]
    else:
        cfg = GeneratorConfig(
            n=args.n, tmax=args.tmax,
            m=args.m if args.m is not None else "uniform",
        )
        instances = generate_instances(cfg, args.count, seed=args.seed)

    if args.retries < 0:
        print(f"--retries must be >= 0, got {args.retries}", file=sys.stderr)
        return 2
    chaos = None
    if args.chaos_seed is not None:
        from repro.batch import ChaosConfig

        try:
            chaos = ChaosConfig(seed=args.chaos_seed, rate=args.chaos_rate)
        except ValueError as exc:
            print(str(exc), file=sys.stderr)
            return 2

    progress = _progress_printer(args, "cell")
    cells = cells_for_matrix(instances, solvers, args.time_limit)
    report = run_batch(
        cells,
        jobs=args.jobs,
        cache=args.cache_dir,
        journal=args.output,
        resume=args.resume,
        progress=progress,
        supervised=args.supervised,
        retries=args.retries,
        memory_limit=args.memory_limit,
        chaos=chaos,
        fault_resume=args.fault_resume,
    )
    if not args.quiet:
        print(file=sys.stderr)

    by_status: dict[str, int] = {}
    for r in report.records:
        by_status[r.status] = by_status.get(r.status, 0) + 1
    statuses = "  ".join(f"{k}: {v}" for k, v in sorted(by_status.items()))
    print(f"{report.total} cells ({len(instances)} instances x {len(solvers)} solvers)")
    print(f"  {statuses}")
    print(
        f"  computed: {report.computed}  cache hits: {report.cache_hits}  "
        f"resumed: {report.resumed}  wall: {report.elapsed:.2f}s  jobs: {args.jobs}"
    )
    if report.faults or report.retried or chaos is not None:
        print(f"  faults: {report.faults}  retried: {report.retried}")
    print(f"records streamed to {args.output}")
    return 0


def _load_problem_set(args: argparse.Namespace):
    """The submit command's problem list (instances file or generator)."""
    from repro.generator.random_systems import Instance
    from repro.solvers.problem import Problem

    if args.instances_file:
        with open(args.instances_file) as fh:
            payload = json.load(fh)
        if isinstance(payload, dict):
            payload = [payload]
        instances = [
            Instance(
                system=TaskSystem.from_tuples(d["tasks"]),
                m=d.get("m", 1),
                seed=d.get("seed", i),
            )
            for i, d in enumerate(payload)
        ]
    else:
        cfg = GeneratorConfig(
            n=args.n, tmax=args.tmax,
            m=args.m if args.m is not None else "uniform",
        )
        instances = generate_instances(cfg, args.count, seed=args.seed)
    return [
        Problem.of(
            inst.system,
            m=inst.m,
            time_limit=args.time_limit,
            node_limit=args.node_limit,
            variable_limit=args.variable_limit,
            label=f"seed:{inst.seed}",
        )
        for inst in instances
    ]


def _cmd_serve(args: argparse.Namespace) -> int:
    """Run the solver service daemon until shutdown."""
    import asyncio

    from repro.service import ServiceCaps, ServiceConfig, SolverService

    if _invalid_jobs(args):
        return 2
    if args.max_pending < 1:
        print(f"--max-pending must be >= 1, got {args.max_pending}",
              file=sys.stderr)
        return 2
    if args.retries < 0:
        print(f"--retries must be >= 0, got {args.retries}", file=sys.stderr)
        return 2
    caps = ServiceCaps(
        max_time_limit=args.max_time_limit,
        default_time_limit=min(args.default_time_limit, args.max_time_limit),
        max_node_limit=args.max_node_limit,
        max_variable_limit=args.max_variable_limit,
    )
    config = ServiceConfig(
        jobs=args.jobs,
        max_pending=args.max_pending,
        caps=caps,
        cache_dir=args.cache_dir,
        journal=args.journal,
        supervised=not args.unsupervised,
        retries=args.retries,
        memory_limit=args.memory_limit,
        allow_shutdown=not args.no_remote_shutdown,
    )
    service = SolverService(config)
    if args.stdio:
        # stdout is the protocol channel: nothing else may print there
        asyncio.run(service.serve_stdio())
        return 0

    def ready(addr) -> None:
        # machine-readable so scripts can learn an ephemeral port
        print(
            json.dumps(
                {"type": "listening", "host": addr[0], "port": addr[1]}
            ),
            flush=True,
        )

    try:
        asyncio.run(service.serve_tcp(args.host, args.port, ready=ready))
    except KeyboardInterrupt:
        pass
    return 0


def _cmd_submit(args: argparse.Namespace) -> int:
    """Stream a problem set through a running solver daemon."""
    from repro.service import ServiceClient, ServiceError

    if _bad_solver(args.solver):
        return 2
    problems = _load_problem_set(args)
    progress = _progress_printer(args, "problem")
    cached_count = 0
    done = 0

    def on_response(index, report, cached) -> None:
        nonlocal cached_count, done
        done += 1
        if cached:
            cached_count += 1
        if progress is not None:
            progress(done, len(problems))

    try:
        with ServiceClient.connect(args.host, args.port) as client:
            reports = client.solve_many(
                problems, args.solver, on_response=on_response
            )
            stats = client.stats() if args.stats else None
            if args.shutdown:
                client.shutdown()
    except (ServiceError, OSError) as exc:
        print(f"\nsubmit failed: {exc}", file=sys.stderr)
        return 2
    if not args.quiet:
        print(file=sys.stderr)
    if args.output:
        with open(args.output, "w") as fh:
            for report in reports:
                fh.write(json.dumps(report.to_dict(),
                                    separators=(",", ":")) + "\n")
    by_status: dict[str, int] = {}
    for report in reports:
        label = report.status_label
        by_status[label] = by_status.get(label, 0) + 1
    statuses = "  ".join(f"{k}: {v}" for k, v in sorted(by_status.items()))
    print(f"{len(reports)} problems via {args.host}:{args.port}")
    print(f"  {statuses}")
    print(f"  served from cache: {cached_count}")
    if stats is not None:
        print(f"  server stats: {json.dumps(stats, sort_keys=True)}")
    if args.output:
        print(f"reports written to {args.output}")
    return 0


def _cmd_journal_merge(args: argparse.Namespace) -> int:
    """Merge N shard journals into one canonical-order journal."""
    import os

    from repro.batch import merge_journals

    missing = [s for s in args.shards if not os.path.exists(s)]
    if missing:
        print(f"missing shard journal(s): {', '.join(missing)}",
              file=sys.stderr)
        return 2
    report = merge_journals(args.shards, args.output)
    print(
        f"merged {len(report.shards)} shard(s): {report.records} records "
        f"from {report.lines} lines ({report.duplicates} superseded "
        f"duplicates, {report.torn} torn/corrupt lines skipped) "
        f"-> {args.output}"
    )
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    from repro.experiments.table1 import Table1Config, run_table1
    from repro.experiments.table2 import run_table2
    from repro.experiments.table3 import run_table3
    from repro.experiments.table4 import Table4Config, run_table4

    if _invalid_jobs(args):
        return 2
    progress = _progress_printer(args, "run")

    name = args.table
    if name in ("table1", "table2", "table3"):
        if args.paper:
            cfg = Table1Config.paper_scale()
        else:
            cfg = Table1Config(
                n_instances=args.instances, time_limit=args.time_limit,
            )
        t1 = run_table1(cfg, progress=progress, jobs=args.jobs,
                        cache_dir=args.cache_dir)
        if not args.quiet:
            print(file=sys.stderr)
        if name == "table1":
            print(format_table1(t1))
        elif name == "table2":
            print(format_table2(run_table2(table1=t1)))
        else:
            print(format_table3(run_table3(table1=t1)))
        if args.records:
            with open(args.records, "w") as fh:
                fh.write(t1.run.to_json())
            print(f"records written to {args.records}")
    elif name == "table4":
        if args.paper:
            cfg4 = Table4Config.paper_scale()
        else:
            cfg4 = Table4Config(
                instances_per_n=max(2, args.instances // 4),
                time_limit=args.time_limit,
            )
        t4 = run_table4(cfg4, progress=progress, jobs=args.jobs,
                        cache_dir=args.cache_dir)
        if not args.quiet:
            print(file=sys.stderr)
        print(format_table4(t4))
    else:  # pragma: no cover - argparse restricts choices
        raise AssertionError(name)
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The full ``repro-mgrts`` argument parser (one subparser per command)."""
    parser = argparse.ArgumentParser(
        prog="repro-mgrts",
        description="Global multiprocessor real-time scheduling as a CSP "
        "(Cucu-Grosjean & Buffet, ICPP 2009)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    g = sub.add_parser("generate", help="sample random instances (Section VII-A)")
    g.add_argument("--count", type=int, default=1)
    g.add_argument("-n", type=int, default=10, help="tasks per instance")
    g.add_argument("-m", type=int, default=None, help="processors (default: U(1..n-1))")
    g.add_argument("--tmax", type=int, default=7)
    g.add_argument("--order", default="d-first", choices=["d-first", "cdt", "tdc"])
    g.add_argument("--offsets", default="uniform", choices=["uniform", "zero"])
    g.add_argument("--seed", type=int, default=0)
    g.add_argument("--output", "-o", default=None)
    g.set_defaults(func=_cmd_generate)

    s = sub.add_parser("solve", help="solve one instance JSON")
    s.add_argument("instance", help="instance JSON file")
    s.add_argument(
        "--solver", default="csp2+dc",
        help="registry name (see `repro-mgrts solvers`), e.g. csp2+dc or "
        "portfolio:csp2+dc,sat",
    )
    s.add_argument("--time-limit", type=float, default=30.0)
    s.add_argument("--seed", type=int, default=None)
    s.add_argument("--output", "-o", default=None, help="write schedule JSON here")
    s.add_argument(
        "--min-processors",
        action="store_true",
        help="ignore the instance's m; incrementally find the smallest "
        "sufficient processor count (paper Section VIII)",
    )
    s.set_defaults(func=_cmd_solve)

    an = sub.add_parser(
        "analyze",
        help="run the polynomial-time screening cascade (no exact search)",
    )
    an.add_argument("instance", help="instance JSON file")
    an.add_argument(
        "-m", type=int, default=None,
        help="processor count (default: the instance's m)",
    )
    an.add_argument(
        "--no-simulate", action="store_true",
        help="closed-form tests only (skip the simulation witnesses)",
    )
    an.add_argument(
        "--show-schedule", action="store_true",
        help="print the witness schedule when a simulation test decides",
    )
    an.add_argument("--json", action="store_true", help="machine-readable output")
    an.set_defaults(func=_cmd_analyze)

    d = sub.add_parser(
        "difftest",
        help="differentially fuzz solvers against each other on a seeded "
        "grid (witness validation + counterexample shrinking)",
    )
    d.add_argument(
        "--solvers",
        default="edf-exact,csp2+dc,csp2+learn,sat,screen+csp2+dc",
        help="comma-separated registry names to cross-check; use ';' as "
        "the separator when listing a portfolio (its name contains "
        "commas)",
    )
    d.add_argument("--instances", type=int, default=100,
                   help="instances to generate and cross-check")
    d.add_argument("--seed", type=int, default=0, help="generator seed")
    d.add_argument("-n", type=int, default=5, help="tasks per instance")
    d.add_argument("--tmax", type=int, default=5, help="maximum period")
    d.add_argument("-m", type=int, default=None,
                   help="processors (default: U(1..n-1))")
    d.add_argument("--time-limit", type=float, default=10.0,
                   help="per-cell wall budget (seconds)")
    d.add_argument("--jobs", "-j", type=int, default=1,
                   help="worker processes (1 = serial, in-process)")
    d.add_argument("--artifacts", default=None,
                   help="write a JSONL disagreement trail here")
    d.add_argument("--no-shrink", action="store_true",
                   help="keep findings at generated size (skip shrinking)")
    d.add_argument("--quiet", action="store_true")
    d.add_argument("--json", action="store_true", help="machine-readable output")
    d.set_defaults(func=_cmd_difftest)

    li = sub.add_parser(
        "lint",
        help="contract-aware static analysis (determinism, explain "
        "contract, registry coherence, pickle and trail safety)",
    )
    li.add_argument(
        "paths", nargs="*",
        help="repo-relative files/dirs to lint (default: src/repro scripts "
        "+ the checked-in lint fixtures)",
    )
    li.add_argument(
        "--root", default=".",
        help="repository root the paths (and the baseline) are relative to",
    )
    li.add_argument(
        "--baseline", default=None,
        help="suppression file (default: <root>/lint-baseline.txt if present)",
    )
    li.add_argument(
        "--list-rules", action="store_true",
        help="print the registered rules and exit",
    )
    li.add_argument("--json", action="store_true", help="machine-readable output")
    li.set_defaults(func=_cmd_lint)

    ls = sub.add_parser(
        "solvers", help="list registered solvers with their metadata"
    )
    ls.add_argument("--json", action="store_true", help="machine-readable output")
    ls.add_argument(
        "--all", action="store_true",
        help="include non-standalone families (the portfolio meta-solver)",
    )
    ls.set_defaults(func=_cmd_solvers)

    v = sub.add_parser("validate", help="check a schedule JSON against C1-C4")
    v.add_argument("schedule", help="schedule JSON file (from solve --output)")
    v.set_defaults(func=_cmd_validate)

    f = sub.add_parser("figure1", help="print the availability-interval chart")
    f.add_argument("--instance", default=None, help="chart this instance instead")
    f.set_defaults(func=_cmd_figure1)

    e = sub.add_parser("experiment", help="reproduce a table of Section VII")
    e.add_argument("table", choices=["table1", "table2", "table3", "table4"])
    e.add_argument("--instances", type=int, default=40)
    e.add_argument("--time-limit", type=float, default=1.0)
    e.add_argument("--paper", action="store_true",
                   help="full 500x30s protocol (hours of compute)")
    e.add_argument("--records", default=None, help="dump raw run records JSON")
    e.add_argument("--jobs", "-j", type=int, default=1,
                   help="worker processes for the run matrix")
    e.add_argument("--cache-dir", default=None,
                   help="content-addressed result cache directory")
    e.add_argument("--quiet", action="store_true")
    e.set_defaults(func=_cmd_experiment)

    b = sub.add_parser(
        "batch",
        help="run an (instance x solver) campaign in parallel, with "
        "caching and crash-safe resume",
    )
    b.add_argument("--instances-file", default=None,
                   help="instance JSON from `generate` (overrides --count/-n/-m)")
    b.add_argument("--count", type=int, default=40, help="instances to generate")
    b.add_argument("-n", type=int, default=10, help="tasks per instance")
    b.add_argument("-m", type=int, default=None,
                   help="processors (default: U(1..n-1))")
    b.add_argument("--tmax", type=int, default=7)
    b.add_argument("--seed", type=int, default=2009, help="generator seed")
    b.add_argument("--solvers", default="csp1,csp2,csp2+dc",
                   help="comma-separated registry names; use ';' as the "
                   "separator when listing a portfolio (its name contains "
                   "commas), e.g. \"csp1;portfolio:csp2+dc,sat\"")
    b.add_argument("--time-limit", type=float, default=1.0,
                   help="per-cell wall budget (seconds)")
    b.add_argument("--jobs", "-j", type=int, default=1,
                   help="worker processes (1 = serial, in-process)")
    b.add_argument("--cache-dir", default=None,
                   help="content-addressed result cache shared across campaigns")
    b.add_argument("--output", "-o", default="batch-results.jsonl",
                   help="streaming JSONL journal (one line per cell)")
    b.add_argument("--resume", action="store_true",
                   help="skip cells already completed in --output")
    b.add_argument("--supervised", action="store_true",
                   help="run every cell in its own watched child process "
                   "(watchdog, fault classification, optional rlimit)")
    b.add_argument("--retries", type=int, default=1,
                   help="extra supervised attempts for a faulted cell "
                   "before it is journaled as fault:*")
    b.add_argument("--memory-limit", type=int, default=None, metavar="BYTES",
                   help="per-child RLIMIT_AS (supervised executions only)")
    b.add_argument("--fault-resume", choices=("skip", "retry"), default="skip",
                   help="what --resume does with journaled fault:* cells: "
                   "serve them as-is, or recompute them")
    b.add_argument("--chaos-seed", type=int, default=None,
                   help="enable deterministic fault injection with this "
                   "seed (implies --supervised; testing only)")
    b.add_argument("--chaos-rate", type=float, default=0.1,
                   help="per-site injection probability under --chaos-seed")
    b.add_argument("--quiet", action="store_true")
    b.set_defaults(func=_cmd_batch)

    sv = sub.add_parser(
        "serve",
        help="run the solver service daemon (JSONL over TCP or stdio)",
    )
    sv.add_argument("--host", default="127.0.0.1")
    sv.add_argument("--port", type=int, default=0,
                    help="TCP port (0 = ephemeral; the bound port is "
                    "printed as a JSON 'listening' line)")
    sv.add_argument("--stdio", action="store_true",
                    help="serve one session over stdin/stdout instead of "
                    "TCP (stdout becomes the protocol channel)")
    sv.add_argument("--jobs", "-j", type=int, default=2,
                    help="solves in flight at once (one watched child each)")
    sv.add_argument("--max-pending", type=int, default=64,
                    help="admission window; the next request is answered "
                    "with a structured 'busy' error")
    sv.add_argument("--cache-dir", default=None,
                    help="shared memo layer root (reports live under "
                    "<cache-dir>/reports)")
    sv.add_argument("--journal", default=None,
                    help="crash-safe JSONL request journal (appended "
                    "across restarts; torn tail trimmed)")
    sv.add_argument("--max-time-limit", type=float, default=30.0,
                    help="per-request wall-budget ceiling (seconds)")
    sv.add_argument("--default-time-limit", type=float, default=5.0,
                    help="wall budget granted to requests carrying none")
    sv.add_argument("--max-node-limit", type=int, default=None,
                    help="per-request node-budget ceiling (default: uncapped)")
    sv.add_argument("--max-variable-limit", type=int, default=2_000_000,
                    help="memory-guard ceiling (predicted model variables)")
    sv.add_argument("--retries", type=int, default=1,
                    help="extra supervised attempts before a request is "
                    "answered fault:*")
    sv.add_argument("--memory-limit", type=int, default=None, metavar="BYTES",
                    help="per-child RLIMIT_AS (supervised solves only)")
    sv.add_argument("--unsupervised", action="store_true",
                    help="solve in-process instead of watched children "
                    "(faster; a crashing solve takes the daemon down)")
    sv.add_argument("--no-remote-shutdown", action="store_true",
                    help="ignore 'shutdown' requests from clients")
    sv.set_defaults(func=_cmd_serve)

    sm = sub.add_parser(
        "submit",
        help="stream a problem set through a running solver daemon",
    )
    sm.add_argument("--host", default="127.0.0.1")
    sm.add_argument("--port", type=int, required=True)
    sm.add_argument("--instances-file", default=None,
                    help="instance JSON from `generate` (overrides "
                    "--count/-n/-m/--tmax/--seed)")
    sm.add_argument("--count", type=int, default=40,
                    help="instances to generate")
    sm.add_argument("-n", type=int, default=5, help="tasks per instance")
    sm.add_argument("-m", type=int, default=None,
                    help="processors (default: U(1..n-1))")
    sm.add_argument("--tmax", type=int, default=5)
    sm.add_argument("--seed", type=int, default=2009, help="generator seed")
    sm.add_argument("--solver", default="csp2+dc",
                    help="registry name to request for every problem")
    sm.add_argument("--time-limit", type=float, default=None,
                    help="per-request wall budget (None = server default; "
                    "the server clamps to its cap)")
    sm.add_argument("--node-limit", type=int, default=None,
                    help="per-request search-node budget")
    sm.add_argument("--variable-limit", type=int, default=None,
                    help="per-request memory-guard budget")
    sm.add_argument("--output", "-o", default=None,
                    help="write one SolveReport JSON line per problem")
    sm.add_argument("--stats", action="store_true",
                    help="print the server's counters after the run")
    sm.add_argument("--shutdown", action="store_true",
                    help="ask the server to stop after the run")
    sm.add_argument("--quiet", action="store_true")
    sm.set_defaults(func=_cmd_submit)

    j = sub.add_parser("journal", help="campaign/service journal utilities")
    jsub = j.add_subparsers(dest="journal_command", required=True)
    jm = jsub.add_parser(
        "merge",
        help="combine N shard journals into one canonical-order journal "
        "(last-line-wins dedup, torn lines skipped)",
    )
    jm.add_argument("shards", nargs="+", help="shard journal JSONL files")
    jm.add_argument("--output", "-o", required=True,
                    help="merged journal path (written atomically)")
    jm.set_defaults(func=_cmd_journal_merge)

    return parser


def main(argv: list[str] | None = None) -> int:
    """Console entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
