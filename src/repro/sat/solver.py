"""A conflict-driven clause-learning (CDCL) SAT solver.

Standard modern architecture, sized for the CSP1-shaped instances of this
repository:

* two-watched-literal unit propagation;
* first-UIP conflict analysis with clause learning;
* EVSIDS variable activities (exponentially decayed, bumped on conflict);
* phase saving;
* Luby-sequence restarts;
* learned-clause database growth is unbounded (instances here are small
  enough that deletion buys nothing but complexity).

Internal literal encoding: variable ``v`` (0-based) has positive literal
``2v`` and negative literal ``2v+1``; ``lit ^ 1`` negates.  The public API
speaks DIMACS (1-based signed ints) via :class:`repro.sat.cnf.CNF`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from repro.sat.cnf import CNF
from repro.util.timer import Deadline

__all__ = ["SatStatus", "SatStats", "SatResult", "CdclSolver"]

_UNASSIGNED = -1


class SatStatus(Enum):
    SAT = "sat"
    UNSAT = "unsat"
    UNKNOWN = "unknown"


@dataclass
class SatStats:
    conflicts: int = 0
    decisions: int = 0
    propagations: int = 0
    restarts: int = 0
    learned: int = 0
    elapsed: float = 0.0


@dataclass
class SatResult:
    status: SatStatus
    #: 0-indexed truth values (only meaningful when SAT)
    model: list[bool] | None
    stats: SatStats

    @property
    def is_sat(self) -> bool:
        return self.status is SatStatus.SAT

    def value(self, dimacs_var: int) -> bool:
        """Truth value of a DIMACS variable in the model."""
        if self.model is None:
            raise ValueError(f"no model (status={self.status.name})")
        return self.model[dimacs_var - 1]


def _luby(i: int) -> int:
    """The Luby restart sequence 1,1,2,1,1,2,4,1,1,2,1,1,2,4,8,.. (1-based).

    ``luby(i) = 2^(k-1)`` when ``i = 2^k - 1``, else ``luby(i - 2^(k-1) + 1)``
    for the unique ``k`` with ``2^(k-1) <= i < 2^k``.
    """
    if i < 1:
        raise ValueError(f"luby index is 1-based, got {i}")
    while True:
        k = i.bit_length()
        if i == (1 << k) - 1:
            return 1 << (k - 1)
        i = i - (1 << (k - 1)) + 1


class CdclSolver:
    """Solve a :class:`CNF`; one instance per formula."""

    def __init__(self, cnf: CNF) -> None:
        self.n = cnf.n_vars
        self.stats = SatStats()
        self._empty_input = False
        # clauses as lists of internal literals
        self.clauses: list[list[int]] = []
        self.values: list[int] = [_UNASSIGNED] * self.n
        self.levels: list[int] = [0] * self.n
        self.reasons: list[int] = [-1] * self.n  # clause index or -1 (decision)
        self.trail: list[int] = []  # internal lits in assignment order
        self.trail_lim: list[int] = []
        self.qhead = 0
        self.watches: list[list[int]] = [[] for _ in range(2 * self.n)]
        self.activity: list[float] = [0.0] * self.n
        self.var_inc = 1.0
        self.phase: list[bool] = [False] * self.n
        self._units: list[int] = []
        for clause in cnf.clauses:
            lits = sorted({self._to_internal(l) for l in clause})
            # drop tautologies (x | ~x)
            if any(lits[i] ^ 1 == lits[i + 1] for i in range(len(lits) - 1)):
                continue
            if not lits:
                self._empty_input = True
            elif len(lits) == 1:
                self._units.append(lits[0])
            else:
                self._attach(lits)

    @staticmethod
    def _to_internal(dimacs: int) -> int:
        v = abs(dimacs) - 1
        return 2 * v + (1 if dimacs < 0 else 0)

    def _attach(self, lits: list[int]) -> int:
        idx = len(self.clauses)
        self.clauses.append(lits)
        self.watches[lits[0]].append(idx)
        self.watches[lits[1]].append(idx)
        return idx

    # -- assignment ------------------------------------------------------------
    def _lit_value(self, lit: int) -> int:
        """1 true, 0 false, -1 unassigned."""
        v = self.values[lit >> 1]
        if v == _UNASSIGNED:
            return _UNASSIGNED
        return v ^ (lit & 1)

    def _enqueue(self, lit: int, reason: int) -> bool:
        var = lit >> 1
        val = 1 - (lit & 1)
        if self.values[var] != _UNASSIGNED:
            return self.values[var] == val
        self.values[var] = val
        self.levels[var] = len(self.trail_lim)
        self.reasons[var] = reason
        self.trail.append(lit)
        return True

    def _propagate(self) -> int:
        """Unit propagation; returns conflicting clause index or -1."""
        while self.qhead < len(self.trail):
            lit = self.trail[self.qhead]
            self.qhead += 1
            self.stats.propagations += 1
            false_lit = lit ^ 1
            watch_list = self.watches[false_lit]
            i = 0
            while i < len(watch_list):
                ci = watch_list[i]
                clause = self.clauses[ci]
                # normalize: watched false literal at position 1
                if clause[0] == false_lit:
                    clause[0], clause[1] = clause[1], clause[0]
                first = clause[0]
                if self._lit_value(first) == 1:
                    i += 1
                    continue
                # search replacement watch
                moved = False
                for k in range(2, len(clause)):
                    if self._lit_value(clause[k]) != 0:
                        clause[1], clause[k] = clause[k], clause[1]
                        self.watches[clause[1]].append(ci)
                        watch_list[i] = watch_list[-1]
                        watch_list.pop()
                        moved = True
                        break
                if moved:
                    continue
                # clause is unit or conflicting
                if self._lit_value(first) == 0:
                    self.qhead = len(self.trail)
                    return ci
                self._enqueue(first, ci)
                i += 1
        return -1

    # -- conflict analysis --------------------------------------------------------
    def _bump(self, var: int) -> None:
        self.activity[var] += self.var_inc
        if self.activity[var] > 1e100:
            for v in range(self.n):
                self.activity[v] *= 1e-100
            self.var_inc *= 1e-100

    def _analyze(self, confl: int) -> tuple[list[int], int]:
        """1-UIP learned clause and backjump level."""
        learnt = [0]  # placeholder for the asserting literal
        seen = [False] * self.n
        counter = 0
        lit = -1
        level = len(self.trail_lim)
        index = len(self.trail) - 1
        reason = confl
        while True:
            clause = self.clauses[reason]
            start = 0 if lit == -1 else 1
            # for a reason clause, clause[0] is the implied literal
            for q in clause[start:]:
                var = q >> 1
                if not seen[var] and self.levels[var] > 0:
                    seen[var] = True
                    self._bump(var)
                    if self.levels[var] >= level:
                        counter += 1
                    else:
                        learnt.append(q)
            # pick next trail literal to resolve on
            while True:
                lit = self.trail[index]
                index -= 1
                if seen[lit >> 1]:
                    break
            counter -= 1
            seen[lit >> 1] = False
            if counter == 0:
                break
            # invariant: while a clause serves as a reason its implied
            # literal sits at position 0 (it stays true until backjumped,
            # so propagation never swaps it out of the watch slots)
            reason = self.reasons[lit >> 1]
        learnt[0] = lit ^ 1
        if len(learnt) == 1:
            return learnt, 0
        back = max(self.levels[q >> 1] for q in learnt[1:])
        # move a literal of the backjump level into watch position 1
        for k in range(1, len(learnt)):
            if self.levels[learnt[k] >> 1] == back:
                learnt[1], learnt[k] = learnt[k], learnt[1]
                break
        return learnt, back

    def _backjump(self, level: int) -> None:
        if len(self.trail_lim) <= level:
            return
        mark = self.trail_lim[level]
        for lit in self.trail[mark:]:
            var = lit >> 1
            self.phase[var] = self.values[var] == 1
            self.values[var] = _UNASSIGNED
            self.reasons[var] = -1
        del self.trail[mark:]
        del self.trail_lim[level:]
        self.qhead = len(self.trail)

    def _decide(self) -> int:
        """Pick an unassigned variable by activity; -1 when all assigned."""
        best = -1
        best_act = -1.0
        for v in range(self.n):
            if self.values[v] == _UNASSIGNED and self.activity[v] > best_act:
                best_act = self.activity[v]
                best = v
        return best

    # -- main loop -------------------------------------------------------------------
    def solve(self, time_limit: float | None = None, conflict_limit: int | None = None) -> SatResult:
        deadline = Deadline(time_limit)
        stats = self.stats

        def result(status: SatStatus, model=None) -> SatResult:
            stats.elapsed = deadline.elapsed()
            return SatResult(status=status, model=model, stats=stats)

        if self._empty_input:
            return result(SatStatus.UNSAT)
        for lit in self._units:
            if not self._enqueue(lit, -1):
                return result(SatStatus.UNSAT)
        if self._propagate() != -1:
            return result(SatStatus.UNSAT)

        restart_count = 0
        conflicts_until_restart = 64 * _luby(1)
        while True:
            if deadline.expired() or (
                conflict_limit is not None and stats.conflicts >= conflict_limit
            ):
                return result(SatStatus.UNKNOWN)
            confl = self._propagate()
            if confl != -1:
                stats.conflicts += 1
                if not self.trail_lim:
                    return result(SatStatus.UNSAT)
                learnt, back = self._analyze(confl)
                self._backjump(back)
                if len(learnt) == 1:
                    if not self._enqueue(learnt[0], -1):
                        return result(SatStatus.UNSAT)
                else:
                    ci = self._attach(learnt)
                    stats.learned += 1
                    self._enqueue(learnt[0], ci)
                self.var_inc /= 0.95  # EVSIDS decay
                conflicts_until_restart -= 1
                if conflicts_until_restart <= 0:
                    stats.restarts += 1
                    restart_count += 1
                    conflicts_until_restart = 64 * _luby(restart_count + 1)
                    self._backjump(0)
                continue
            var = self._decide()
            if var == -1:
                model = [self.values[v] == 1 for v in range(self.n)]
                return result(SatStatus.SAT, model)
            stats.decisions += 1
            self.trail_lim.append(len(self.trail))
            lit = 2 * var + (0 if self.phase[var] else 1)
            self._enqueue(lit, -1)
