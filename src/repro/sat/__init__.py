"""A from-scratch CDCL SAT solver and CNF tooling.

The paper remarks (Section IV) that CSP1's all-boolean shape means "even
boolean satisfiability (SAT) solvers could be used".  This package makes
that remark executable: :mod:`repro.sat.cnf` holds formulas (DIMACS I/O
included), :mod:`repro.sat.encode` provides at-most-one and exactly-k
cardinality encodings (pairwise and Sinz sequential-counter), and
:mod:`repro.sat.solver` is a conflict-driven clause-learning solver with
two-watched-literal propagation, EVSIDS branching, phase saving and Luby
restarts.
"""

from repro.sat.cnf import CNF
from repro.sat.encode import (
    at_least_one,
    at_most_one_pairwise,
    at_most_one_sequential,
    exactly_k,
)
from repro.sat.solver import CdclSolver, SatResult, SatStats, SatStatus

__all__ = [
    "CNF",
    "at_least_one",
    "at_most_one_pairwise",
    "at_most_one_sequential",
    "exactly_k",
    "CdclSolver",
    "SatResult",
    "SatStats",
    "SatStatus",
]
