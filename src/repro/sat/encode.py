"""Cardinality-constraint encodings over CNF.

The CSP1 -> SAT translation needs exactly the cardinality vocabulary of
the paper's constraints: at-most-one for (3)/(4) and exactly-k for (5).
Two at-most-one encodings are provided (the classic pairwise quadratic
one and Sinz's sequential-counter with auxiliaries) so the ablation bench
can compare them; exactly-k composes two sequential at-most-k counters
(one over the literals for the upper bound, one over their negations for
the lower bound).
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.sat.cnf import CNF

__all__ = [
    "at_least_one",
    "at_most_one_pairwise",
    "at_most_one_sequential",
    "at_most_k_sequential",
    "exactly_k",
]


def at_least_one(cnf: CNF, lits: Sequence[int]) -> None:
    """``l_1 | l_2 | ..`` (an empty list adds the contradiction clause)."""
    cnf.add_clause(lits)


def at_most_one_pairwise(cnf: CNF, lits: Sequence[int]) -> None:
    """Pairwise encoding: ``O(k^2)`` binary clauses, no auxiliaries."""
    for a in range(len(lits)):
        for b in range(a + 1, len(lits)):
            cnf.add_clause([-lits[a], -lits[b]])


def at_most_one_sequential(cnf: CNF, lits: Sequence[int]) -> None:
    """Sinz sequential encoding: ``O(k)`` clauses with ``k-1`` auxiliaries.

    ``s_i`` means "some literal among the first ``i+1`` is true".
    """
    k = len(lits)
    if k <= 1:
        return
    if k <= 3:
        # pairwise is smaller at tiny sizes
        at_most_one_pairwise(cnf, lits)
        return
    s = cnf.new_vars(k - 1)
    cnf.add_clause([-lits[0], s[0]])
    for i in range(1, k - 1):
        cnf.add_clause([-lits[i], s[i]])
        cnf.add_clause([-s[i - 1], s[i]])
        cnf.add_clause([-lits[i], -s[i - 1]])
    cnf.add_clause([-lits[k - 1], -s[k - 2]])


def at_most_k_sequential(cnf: CNF, lits: Sequence[int], k: int) -> None:
    """Sinz LTn,k sequential counter: at most ``k`` of ``lits`` are true."""
    n = len(lits)
    if k < 0:
        raise ValueError(f"k must be >= 0, got {k}")
    if k == 0:
        for l in lits:
            cnf.add_clause([-l])
        return
    if n <= k:
        return  # trivially satisfied
    if k == 1:
        at_most_one_sequential(cnf, lits)
        return
    # s[i][j]: among lits[0..i], at least j+1 are true (j < k)
    s = [[cnf.new_var() for _ in range(k)] for _ in range(n)]
    cnf.add_clause([-lits[0], s[0][0]])
    for j in range(1, k):
        cnf.add_clause([-s[0][j]])
    for i in range(1, n):
        cnf.add_clause([-lits[i], s[i][0]])
        cnf.add_clause([-s[i - 1][0], s[i][0]])
        for j in range(1, k):
            cnf.add_clause([-lits[i], -s[i - 1][j - 1], s[i][j]])
            cnf.add_clause([-s[i - 1][j], s[i][j]])
        cnf.add_clause([-lits[i], -s[i - 1][k - 1]])


def exactly_k(cnf: CNF, lits: Sequence[int], k: int) -> None:
    """Exactly ``k`` of ``lits`` are true (paper constraint (5)).

    Composes an at-most-k over the literals with an at-most-(n-k) over
    their negations (which is at-least-k over the literals).
    """
    n = len(lits)
    if k < 0 or k > n:
        # unsatisfiable on its face
        cnf.add_clause([])
        return
    at_most_k_sequential(cnf, lits, k)
    at_most_k_sequential(cnf, [-l for l in lits], n - k)
