"""CNF formula container with DIMACS import/export.

Literals use DIMACS convention: variables are 1-based positive integers,
a negative integer is the negated variable, 0 terminates clauses in files.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

__all__ = ["CNF"]


class CNF:
    """A growable CNF formula."""

    def __init__(self, n_vars: int = 0) -> None:
        if n_vars < 0:
            raise ValueError(f"n_vars must be >= 0, got {n_vars}")
        self.n_vars = n_vars
        self.clauses: list[tuple[int, ...]] = []

    def new_var(self) -> int:
        """Allocate a fresh variable; returns its (positive) index."""
        self.n_vars += 1
        return self.n_vars

    def new_vars(self, count: int) -> list[int]:
        """Allocate ``count`` fresh variables."""
        return [self.new_var() for _ in range(count)]

    def add_clause(self, lits: Iterable[int]) -> None:
        """Add one clause; literals must reference allocated variables."""
        clause = tuple(lits)
        for lit in clause:
            if lit == 0:
                raise ValueError("literal 0 is reserved for DIMACS terminators")
            if abs(lit) > self.n_vars:
                raise ValueError(
                    f"literal {lit} references unallocated variable (n_vars={self.n_vars})"
                )
        self.clauses.append(clause)

    def add_clauses(self, clauses: Iterable[Sequence[int]]) -> None:
        for c in clauses:
            self.add_clause(c)

    @property
    def n_clauses(self) -> int:
        return len(self.clauses)

    # -- DIMACS -----------------------------------------------------------------
    def to_dimacs(self) -> str:
        """Serialize in DIMACS cnf format."""
        lines = [f"p cnf {self.n_vars} {self.n_clauses}"]
        for clause in self.clauses:
            lines.append(" ".join(str(l) for l in clause) + " 0")
        return "\n".join(lines) + "\n"

    @classmethod
    def from_dimacs(cls, text: str) -> "CNF":
        """Parse DIMACS cnf text (comments and header tolerated)."""
        cnf: CNF | None = None
        pending: list[int] = []
        clauses: list[list[int]] = []
        max_var = 0
        for raw in text.splitlines():
            line = raw.strip()
            if not line or line.startswith("c"):
                continue
            if line.startswith("p"):
                parts = line.split()
                if len(parts) != 4 or parts[1] != "cnf":
                    raise ValueError(f"bad DIMACS header: {line!r}")
                cnf = cls(int(parts[2]))
                continue
            for tok in line.split():
                lit = int(tok)
                if lit == 0:
                    clauses.append(pending)
                    pending = []
                else:
                    pending.append(lit)
                    max_var = max(max_var, abs(lit))
        if pending:
            clauses.append(pending)
        if cnf is None:
            cnf = cls(max_var)
        cnf.n_vars = max(cnf.n_vars, max_var)
        cnf.add_clauses(clauses)
        return cnf

    def evaluate(self, assignment: Sequence[bool]) -> bool:
        """True iff the 0-indexed boolean ``assignment`` satisfies all clauses."""
        if len(assignment) < self.n_vars:
            raise ValueError(f"assignment covers {len(assignment)} of {self.n_vars} vars")
        for clause in self.clauses:
            if not any(
                assignment[abs(l) - 1] == (l > 0) for l in clause
            ):
                return False
        return True

    def __repr__(self) -> str:
        return f"CNF(vars={self.n_vars}, clauses={self.n_clauses})"
