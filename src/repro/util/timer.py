"""Wall-clock budgets shared by all solvers.

The paper gives every solver run a fixed resolution-time budget (30 s on a
2009 Core2Quad).  ``Deadline`` wraps ``time.monotonic`` so solvers can poll
cheaply inside their search loops and report elapsed time in their stats.
"""

from __future__ import annotations

import time

__all__ = ["Deadline"]


class Deadline:
    """A wall-clock budget; ``None`` or ``inf`` means unlimited.

    >>> d = Deadline(0.5)
    >>> d.expired()
    False
    >>> d.remaining() <= 0.5
    True
    """

    __slots__ = ("limit", "_start", "_end")

    def __init__(self, limit: float | None = None) -> None:
        if limit is not None and limit < 0:
            raise ValueError(f"time limit must be >= 0, got {limit}")
        self.limit = limit
        self._start = time.monotonic()
        self._end = None if limit is None else self._start + limit

    def expired(self) -> bool:
        """True once the budget has been consumed."""
        return self._end is not None and time.monotonic() >= self._end

    def elapsed(self) -> float:
        """Seconds since the deadline was created."""
        return time.monotonic() - self._start

    def remaining(self) -> float:
        """Seconds left, ``inf`` when unlimited, clamped at 0."""
        if self._end is None:
            return float("inf")
        return max(0.0, self._end - time.monotonic())

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Deadline(limit={self.limit}, elapsed={self.elapsed():.3f})"
