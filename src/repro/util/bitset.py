"""Bitmask helpers for the CSP engine's integer-bitset domains.

A domain over ``{0, .., k}`` is stored as a plain Python ``int`` whose bit
``v`` is set iff value ``v`` is still in the domain.  Python ints give us
arbitrary width, O(1) amortized bitwise ops and a fast ``bit_count``; at the
domain sizes of this problem (a few hundred values at most) this beats both
``set`` and NumPy boolean arrays by a wide margin.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

__all__ = ["mask_of", "bit_indices", "first_bit", "popcount"]


def mask_of(values: Iterable[int]) -> int:
    """Build a bitmask with the given (non-negative) bit positions set."""
    mask = 0
    for v in values:
        if v < 0:
            raise ValueError(f"bit positions must be non-negative, got {v}")
        mask |= 1 << v
    return mask


def bit_indices(mask: int) -> Iterator[int]:
    """Yield the set bit positions of ``mask`` in increasing order."""
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low


def first_bit(mask: int) -> int:
    """Position of the lowest set bit; -1 for an empty mask."""
    if not mask:
        return -1
    return (mask & -mask).bit_length() - 1


def popcount(mask: int) -> int:
    """Number of set bits (domain size)."""
    return mask.bit_count()
