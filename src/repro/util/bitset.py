"""Bitmask helpers for the CSP engine's integer-bitset domains.

A domain over ``{0, .., k}`` is stored as a plain Python ``int`` whose bit
``v`` is set iff value ``v`` is still in the domain.  Python ints give us
arbitrary width, O(1) amortized bitwise ops and a fast ``bit_count``; at the
domain sizes of this problem (a few hundred values at most) this beats both
``set`` and NumPy boolean arrays by a wide margin.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

__all__ = ["mask_of", "bit_indices", "first_bit", "popcount", "values_from_mask"]


def mask_of(values: Iterable[int]) -> int:
    """Build a bitmask with the given (non-negative) bit positions set."""
    mask = 0
    for v in values:
        if v < 0:
            raise ValueError(f"bit positions must be non-negative, got {v}")
        mask |= 1 << v
    return mask


def bit_indices(mask: int) -> Iterator[int]:
    """Yield the set bit positions of ``mask`` in increasing order."""
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low


def first_bit(mask: int) -> int:
    """Position of the lowest set bit; -1 for an empty mask."""
    if not mask:
        return -1
    return (mask & -mask).bit_length() - 1


def popcount(mask: int) -> int:
    """Number of set bits (domain size)."""
    return mask.bit_count()


def values_from_mask(mask: int, offset: int = 0) -> list[int]:
    """Decode a domain bitmask into its sorted value list.

    Bit ``b`` of ``mask`` represents value ``offset + b`` — the one
    decoding used by every domain reader (``DomainState.values``,
    ``Variable.initial_values``), kept here so the bit-twiddling loop
    exists exactly once.  Hand-unrolled rather than wrapping
    :func:`bit_indices`: this runs once per search node in the value-
    ordering heuristics, where the generator protocol would dominate."""
    out = []
    while mask:
        low = mask & -mask
        out.append(offset + low.bit_length() - 1)
        mask ^= low
    return out
