"""Small shared utilities: integer math, bitset helpers, time budgets.

These are deliberately dependency-free; everything above them in the stack
(`repro.model`, `repro.csp`, `repro.sat`, ...) builds on this module.
"""

from repro.util.math import ceil_div, gcd_all, lcm_all, lcm_pair
from repro.util.bitset import (
    bit_indices,
    first_bit,
    mask_of,
    popcount,
    values_from_mask,
)
from repro.util.timer import Deadline

__all__ = [
    "ceil_div",
    "gcd_all",
    "lcm_all",
    "lcm_pair",
    "bit_indices",
    "first_bit",
    "mask_of",
    "popcount",
    "values_from_mask",
    "Deadline",
]
