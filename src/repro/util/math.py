"""Integer arithmetic helpers used throughout the task model and encodings."""

from __future__ import annotations

import math
from collections.abc import Iterable

__all__ = ["ceil_div", "gcd_all", "lcm_all", "lcm_pair"]


def ceil_div(a: int, b: int) -> int:
    """Return ``ceil(a / b)`` for integers with ``b > 0``.

    Used e.g. for the clone count ``k_i = ceil(D_i / T_i)`` of the
    arbitrary-deadline transformation and the minimum processor count
    ``m_min = ceil(sum C_i / T_i)`` of Table IV.
    """
    if b <= 0:
        raise ValueError(f"ceil_div requires b > 0, got {b}")
    return -(-a // b)


def lcm_pair(a: int, b: int) -> int:
    """Least common multiple of two positive integers."""
    if a <= 0 or b <= 0:
        raise ValueError(f"lcm requires positive integers, got {a}, {b}")
    return a // math.gcd(a, b) * b


def lcm_all(values: Iterable[int]) -> int:
    """Least common multiple of a non-empty iterable of positive integers.

    This is the hyperperiod ``T = lcm(T_1, ..., T_n)`` of a task system.
    """
    result = 1
    seen = False
    for v in values:
        seen = True
        result = lcm_pair(result, v)
    if not seen:
        raise ValueError("lcm_all requires at least one value")
    return result


def gcd_all(values: Iterable[int]) -> int:
    """Greatest common divisor of a non-empty iterable of positive integers."""
    result = 0
    seen = False
    for v in values:
        if v <= 0:
            raise ValueError(f"gcd requires positive integers, got {v}")
        seen = True
        result = math.gcd(result, v)
    if not seen:
        raise ValueError("gcd_all requires at least one value")
    return result
