"""CSP encoding #2 (paper Section V): n-ary variables.

One variable ``x_j(t)`` per (processor, slot) whose value is the task
running there.  The paper's "no task" value is ``-1``; this encoding uses
``n`` (one past the last task index) instead so that the idle value ranks
*above* every task — then the symmetry rule (10) "tasks ascending, idles
last" is the plain :class:`NonDecreasing` chain.  The decoder maps it back.

Constraints:

* (7)  realized structurally: the domain of ``x_j(t)`` only contains tasks
  whose availability windows cover ``t`` (and, heterogeneous case, with
  ``s_{i,j} > 0`` — Section VI-A's domain change);
* (8)  per slot: all-different-except-idle across processors;
* (9)/(12)  per (task, window): exactly ``C_i`` slot-units with value
  ``i``, weighted by ``s_{i,j}`` when non-identical.

Search-strategy ingredients (Section V-C) are expressed on top of the
generic engine:

* chronological variable order = variable *creation* order (slot-major,
  processors within a slot ordered least-capable-first on heterogeneous
  platforms) + the ``input`` variable heuristic;
* task value orderings RM/DM/(T-C)/(D-C) via custom value orders (the
  idle value always ranks last, a weak form of the paper's idle rule —
  the *strict* rule is a dedicated-solver pruning, see
  :mod:`repro.solvers.csp2_dedicated`);
* symmetry breaking (10)/(13): NonDecreasing chains per slot over maximal
  groups of identical processors.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.csp.core import Model, Variable
from repro.model import intervals
from repro.model.platform import Platform
from repro.model.system import TaskSystem
from repro.schedule.schedule import IDLE, Schedule

__all__ = ["Csp2Encoding", "encode_csp2"]


@dataclass
class Csp2Encoding:
    """The CSP2 model plus decode bookkeeping."""

    system: TaskSystem
    platform: Platform
    model: Model
    #: (processor, slot) -> variable
    vars: dict[tuple[int, int], Variable] = field(repr=False)
    #: the value encoding "no task" (== system.n)
    idle_value: int = 0

    @property
    def n_variables(self) -> int:
        return self.model.n_variables

    def decode(self, solution: dict[Variable, int]) -> Schedule:
        """Theorem 1 through the CSP1<->CSP2 bijection of Theorem 2."""
        T = self.system.hyperperiod
        table = np.full((self.platform.m, T), IDLE, dtype=np.int32)
        for (j, t), var in self.vars.items():
            val = solution[var]
            if val != self.idle_value:
                table[j, t] = val
        return Schedule(self.system, self.platform, table)


def _processor_creation_order(system: TaskSystem, platform: Platform) -> list[int]:
    """Within-slot processor order: least capable first (Section VI-A),
    keeping identical-rate groups adjacent so the symmetry chains (13)
    apply to consecutive variables; ties broken by id."""
    if platform.is_identical:
        return list(range(platform.m))
    quality = platform.quality(system)
    mat = platform.rate_matrix(system.n)
    return sorted(
        range(platform.m), key=lambda j: (quality[j], mat[:, j].tobytes(), j)
    )


def encode_csp2(
    system: TaskSystem,
    platform: Platform,
    symmetry_breaking: bool = True,
) -> Csp2Encoding:
    """Build the CSP2 :class:`Model` for a constrained-deadline system."""
    if not system.is_constrained:
        raise ValueError(
            "CSP2 requires a constrained-deadline system; apply "
            "clone_for_arbitrary_deadlines() first (paper Section VI-B)"
        )
    T = system.hyperperiod
    m = platform.m
    n = system.n
    idle = n
    rates = platform.rate_matrix(n)

    # tasks available per slot (condition (7) folded into the domains)
    active_at: list[list[int]] = [[] for _ in range(T)]
    for i in range(n):
        for t in system.task_slots(i):
            active_at[t].append(i)

    proc_order = _processor_creation_order(system, platform)

    model = Model()
    vars: dict[tuple[int, int], Variable] = {}
    # chronological creation: slot-major, then processors (Section V-C-1)
    for t in range(T):
        for j in proc_order:
            domain = [i for i in active_at[t] if rates[i, j] > 0]
            domain.append(idle)
            vars[(j, t)] = model.int_var_from(domain, f"x[{j},{t}]")

    # (8): processors differ unless idle
    for t in range(T):
        if m > 1:
            model.add_all_different_except(
                [vars[(j, t)] for j in proc_order], except_value=idle
            )

    # (9)/(12): exactly C_i units per window
    identical = platform.is_identical
    for i in range(n):
        task = system[i]
        C = task.wcet
        for job in range(system.n_jobs(i)):
            wvars: list[Variable] = []
            wcoefs: list[int] = []
            for t in intervals.window_slots(task, T, job):
                for j in range(m):
                    if rates[i, j] > 0:
                        wvars.append(vars[(j, t)])
                        wcoefs.append(int(rates[i, j]))
            if identical:
                model.add_count_eq(wvars, i, C)
            else:
                model.add_weighted_count_eq(wvars, wcoefs, i, C)

    # (10)/(13): symmetry chains over identical processor groups
    if symmetry_breaking and m > 1:
        groups = [g for g in platform.identical_groups(n) if len(g) > 1]
        for t in range(T):
            for group in groups:
                ordered = [j for j in proc_order if j in group]
                model.add_non_decreasing([vars[(j, t)] for j in ordered])

    return Csp2Encoding(
        system=system, platform=platform, model=model, vars=vars, idle_value=idle
    )
