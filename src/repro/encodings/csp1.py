"""CSP encoding #1 (paper Section IV): boolean variables.

One binary variable ``x_{i,j}(t)`` per (task, processor, slot) meaning
"task ``i`` runs on ``P_j`` at slot ``t``", under:

* (2)  ``x_{i,j}(t) = 0`` outside availability windows — realized by *not
  creating* out-of-window variables at all (the paper notes constraint
  propagation would fix them before search; eliminating them up front is
  the same reduction, from ``sum_i m*T`` down to ``sum_i m*(T/T_i)*D_i``
  real variables);
* (3)  per (processor, slot): at most one task;
* (4)  per (task, slot): at most one processor;
* (5)  per (task, window): exactly ``C_i`` units — or the weighted variant
  (11) ``sum s_{i,j} x_{i,j}(t) = C_i`` on non-identical platforms, with
  ``s_{i,j} = 0`` pairs excluded from variable creation (their domain is
  ``{0}`` in the paper's Section VI-A).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.csp.core import Model, Variable
from repro.model import intervals
from repro.model.platform import Platform
from repro.model.system import TaskSystem
from repro.schedule.schedule import IDLE, Schedule

__all__ = ["Csp1Encoding", "encode_csp1"]


@dataclass
class Csp1Encoding:
    """The CSP1 model plus the bookkeeping needed to decode solutions."""

    system: TaskSystem
    platform: Platform
    model: Model
    #: (task, processor, slot) -> variable; only in-window, rate>0 triples
    vars: dict[tuple[int, int, int], Variable] = field(repr=False)

    @property
    def n_variables(self) -> int:
        return self.model.n_variables

    def decode(self, solution: dict[Variable, int]) -> Schedule:
        """Theorem 1: ``sigma_j(t) = i`` iff ``x_{i,j}(t) = 1``."""
        T = self.system.hyperperiod
        table = np.full((self.platform.m, T), IDLE, dtype=np.int32)
        for (i, j, t), var in self.vars.items():
            if solution[var] == 1:
                if table[j, t] != IDLE:
                    raise ValueError(
                        f"solution places tasks {int(table[j, t])} and {i} both "
                        f"on P{j + 1} at slot {t}"
                    )
                table[j, t] = i
        return Schedule(self.system, self.platform, table)


def encode_csp1(system: TaskSystem, platform: Platform) -> Csp1Encoding:
    """Build the CSP1 :class:`Model` for a constrained-deadline system.

    Arbitrary-deadline systems must be cloned first
    (:func:`repro.model.transform.clone_for_arbitrary_deadlines`).
    """
    if not system.is_constrained:
        raise ValueError(
            "CSP1 requires a constrained-deadline system; apply "
            "clone_for_arbitrary_deadlines() first (paper Section VI-B)"
        )
    T = system.hyperperiod
    m = platform.m
    n = system.n
    rates = platform.rate_matrix(n)
    identical = platform.is_identical

    model = Model()
    vars: dict[tuple[int, int, int], Variable] = {}

    # variables: only (i, j, t) with t inside a window of i and s_ij > 0
    per_proc_slot: dict[tuple[int, int], list[Variable]] = {}
    per_task_slot: dict[tuple[int, int], list[Variable]] = {}
    for i in range(n):
        eligible_procs = [j for j in range(m) if rates[i, j] > 0]
        for t in system.task_slots(i):
            for j in eligible_procs:
                v = model.bool_var(f"x[{i},{j},{t}]")
                vars[(i, j, t)] = v
                per_proc_slot.setdefault((j, t), []).append(v)
                per_task_slot.setdefault((i, t), []).append(v)

    # (3): at most one task per processor-slot
    for group in per_proc_slot.values():
        if len(group) > 1:
            model.add_at_most_one_true(group)
    # (4): at most one processor per task-slot
    for group in per_task_slot.values():
        if len(group) > 1:
            model.add_at_most_one_true(group)
    # (5)/(11): exactly C_i per availability window
    for i in range(n):
        task = system[i]
        C = task.wcet
        for job in range(system.n_jobs(i)):
            wvars: list[Variable] = []
            wcoefs: list[int] = []
            for t in intervals.window_slots(task, T, job):
                for j in range(m):
                    v = vars.get((i, j, t))
                    if v is not None:
                        wvars.append(v)
                        wcoefs.append(int(rates[i, j]))
            if identical:
                model.add_exact_sum_bool(wvars, C)
            else:
                model.add_weighted_exact_sum_bool(wvars, wcoefs, C)

    return Csp1Encoding(system=system, platform=platform, model=model, vars=vars)
