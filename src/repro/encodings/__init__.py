"""MGRTS -> constraint-problem encodings (paper Sections IV, V, VI).

* :mod:`repro.encodings.csp1` — the boolean encoding (one ``x_{i,j}(t)``
  per task/processor/slot), constraints (2)-(5), heterogeneous variant
  (11).
* :mod:`repro.encodings.csp2` — the n-ary encoding (one ``x_j(t)`` per
  processor/slot), constraints (7)-(9), symmetry rule (10)/(13),
  heterogeneous variant (12).
* :mod:`repro.encodings.sat1` — CNF form of CSP1 (the paper's remark that
  "even boolean satisfiability (SAT) solvers could be used").

Every encoding owns a ``decode`` method turning a solver solution back
into a :class:`repro.schedule.Schedule` (Theorem 1's construction).
"""

from repro.encodings.csp1 import Csp1Encoding, encode_csp1
from repro.encodings.csp2 import Csp2Encoding, encode_csp2

__all__ = ["Csp1Encoding", "encode_csp1", "Csp2Encoding", "encode_csp2"]
