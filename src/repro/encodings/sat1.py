"""CNF encoding of CSP1 (the paper's SAT remark, Section IV).

Same variable shape as CSP1 — a boolean per in-window, eligible
(task, processor, slot) triple — with the constraints expressed as
cardinality clauses:

* (3)/(4): at-most-one (pairwise or sequential, selectable);
* (5): exactly-``C_i`` per availability window (sequential counters).

Identical platforms only: weighted sums (11) have no natural clausal
cardinality form, and the paper's SAT remark targets the identical case.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.model import intervals
from repro.model.platform import Platform
from repro.model.system import TaskSystem
from repro.sat.cnf import CNF
from repro.sat.encode import (
    at_most_one_pairwise,
    at_most_one_sequential,
    exactly_k,
)
from repro.schedule.schedule import IDLE, Schedule

__all__ = ["Sat1Encoding", "encode_sat1"]

_AMO = {
    "pairwise": at_most_one_pairwise,
    "sequential": at_most_one_sequential,
}


@dataclass
class Sat1Encoding:
    """CNF plus decode bookkeeping."""

    system: TaskSystem
    platform: Platform
    cnf: CNF
    #: (task, processor, slot) -> DIMACS variable
    vars: dict[tuple[int, int, int], int] = field(repr=False)

    def decode(self, model: list[bool]) -> Schedule:
        """Model -> cyclic schedule (Theorem 1)."""
        T = self.system.hyperperiod
        table = np.full((self.platform.m, T), IDLE, dtype=np.int32)
        for (i, j, t), var in self.vars.items():
            if model[var - 1]:
                if table[j, t] != IDLE:
                    raise ValueError(
                        f"model places tasks {int(table[j, t])} and {i} both on "
                        f"P{j + 1} at slot {t}"
                    )
                table[j, t] = i
        return Schedule(self.system, self.platform, table)


def encode_sat1(
    system: TaskSystem, platform: Platform, amo: str = "sequential"
) -> Sat1Encoding:
    """Build the CNF for a constrained system on identical processors."""
    if not system.is_constrained:
        raise ValueError(
            "SAT encoding requires a constrained-deadline system; apply "
            "clone_for_arbitrary_deadlines() first"
        )
    if not platform.is_identical:
        raise ValueError(
            "the SAT encoding supports identical platforms only; use CSP1/CSP2 "
            "for uniform or heterogeneous rates (paper Section VI-A)"
        )
    if amo not in _AMO:
        raise ValueError(f"amo must be one of {sorted(_AMO)}, got {amo!r}")
    amo_encode = _AMO[amo]

    T = system.hyperperiod
    m = platform.m
    cnf = CNF()
    vars: dict[tuple[int, int, int], int] = {}
    per_proc_slot: dict[tuple[int, int], list[int]] = {}
    per_task_slot: dict[tuple[int, int], list[int]] = {}
    for i in range(system.n):
        for t in system.task_slots(i):
            for j in range(m):
                v = cnf.new_var()
                vars[(i, j, t)] = v
                per_proc_slot.setdefault((j, t), []).append(v)
                per_task_slot.setdefault((i, t), []).append(v)

    for group in per_proc_slot.values():
        if len(group) > 1:
            amo_encode(cnf, group)
    for group in per_task_slot.values():
        if len(group) > 1:
            amo_encode(cnf, group)
    for i in range(system.n):
        task = system[i]
        for job in range(system.n_jobs(i)):
            lits = [
                vars[(i, j, t)]
                for t in intervals.window_slots(task, T, job)
                for j in range(m)
            ]
            exactly_k(cnf, lits, task.wcet)

    return Sat1Encoding(system=system, platform=platform, cnf=cnf, vars=vars)
