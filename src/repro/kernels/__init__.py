"""Vectorised hot-path kernels (numpy optional; scalar fallbacks built in).

This package is a *leaf*: it imports nothing from :mod:`repro.csp`,
:mod:`repro.baselines` or :mod:`repro.analysis`, so any layer can call
into it without cycles.  Every kernel has two implementations with
byte-identical outputs:

* a **numpy path**, used when numpy is importable and not masked;
* a **pure-Python path**, used when numpy is missing — or when the
  environment variable ``REPRO_NO_NUMPY`` is set, which is how CI pins
  the fallback against rot (see the ``kernel-parity`` stage).

The split is deliberate about *where* numpy pays for itself: a numpy
call costs microseconds of dispatch overhead, so the per-event search
hot path (:mod:`repro.kernels.fixpoint`) batches counting rows with
plain-Python inline tables and reserves numpy for the whole-matrix
reset pass; the simulators and demand tables
(:mod:`repro.kernels.simulate`, :mod:`repro.kernels.demand`) operate on
thousands of slots per call, where vectorisation wins outright.

Gate helpers:

* :func:`numpy_or_none` — the single numpy access point for kernels;
* :func:`have_numpy` — boolean convenience;
* :func:`kernel_availability` — the dict ``repro-mgrts solvers --json``
  reports, so clients can see which kernels a deployment runs.
"""

from __future__ import annotations

import os

__all__ = ["numpy_or_none", "have_numpy", "kernel_availability"]

_cached = None
_probed = False


def numpy_or_none():
    """The numpy module, or ``None`` when absent or masked.

    ``REPRO_NO_NUMPY`` (any non-empty value) masks numpy for every
    kernel; it is read per call so tests can flip it with
    ``monkeypatch.setenv`` without re-importing anything.  The import
    itself is probed once per process.
    """
    global _cached, _probed
    if os.environ.get("REPRO_NO_NUMPY"):
        return None
    if not _probed:
        _probed = True
        try:
            import numpy
        except ImportError:  # pragma: no cover - exercised via the env mask
            numpy = None
        _cached = numpy
    return _cached


def have_numpy() -> bool:
    """True iff the numpy-backed kernel paths are currently usable."""
    return numpy_or_none() is not None


def kernel_availability() -> dict:
    """Which kernel implementations this process would run.

    ``batched_fixpoint`` is pure Python by design (per-event numpy calls
    cost more than they save), so it is always available; the other
    entries report whether the numpy path or the scalar fallback is
    active.  Reported by ``repro-mgrts solvers --json``.
    """
    np = numpy_or_none()
    return {
        "numpy": np is not None,
        "numpy_version": getattr(np, "__version__", None),
        "batched_fixpoint": True,
        "vectorized_var_orders": np is not None,
        "simulator_blocks": np is not None,
        "demand_table": np is not None,
    }
