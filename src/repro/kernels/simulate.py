"""Block-stepping core for the discrete-time priority schedulers.

The scalar simulator (:mod:`repro.baselines.simulator`) advances one
slot at a time: release scan, priority sort, history write, decrement —
``O(n)`` Python work per slot, ``O(n T)`` per hyperperiod.  But between
two *scheduling events* — a job release, a running job's completion, an
active job's deadline, a hyperperiod boundary — the set of running jobs
cannot change, so the schedule is constant and the whole stretch can be
executed as one block: fill ``Δ`` history columns, subtract ``Δ`` from
every running job's remaining work, jump ``t += Δ``.  Block endpoints
are exactly the instants at which the scalar loop could have done
anything observable, so every release count, priority pick, miss time
and hyperperiod-aligned state snapshot is **byte-identical** to the
slot-by-slot loop — only faster, by roughly the mean block length
(wcet-sized stretches instead of single slots).

The history matrix is numpy when available (block fills are single
sliced assignments) and a plain list-of-rows otherwise — same contents
either way, so :class:`~repro.schedule.schedule.Schedule` accepts both.

Only *static* priority keys are supported — keys that depend on the
job's release data, not on elapsed execution:

* ``"edf"`` — earliest absolute deadline first, ties by task index;
* ``"rank"`` — fixed task ranks (global fixed-priority).

A dynamic key (e.g. least laxity) could reorder jobs mid-block, which
is why :func:`repro.baselines.simulator.simulate_priority_policy` only
routes through here when the caller declares its key static.

This module is a leaf: no imports from ``repro.csp`` / ``repro.model``
/ ``repro.baselines`` (the idle marker is a parameter for that reason).
"""

from __future__ import annotations

from bisect import insort
from collections.abc import Sequence

from repro.kernels import numpy_or_none

__all__ = ["simulate_static", "STATIC_EDF", "STATIC_RANK"]

#: static-key names accepted by :func:`simulate_static`
STATIC_EDF = "edf"
STATIC_RANK = "rank"


def _new_history(m: int, T: int, idle: int):
    """An ``m x T`` history buffer: numpy when available, else lists."""
    np = numpy_or_none()
    if np is not None:
        return np.full((m, T), idle, dtype=np.int32)
    return [[idle] * T for _ in range(m)]


def _fill_block(history, running: list[int], m: int, col: int, width: int,
                idle: int) -> None:
    """Write one constant block: ``running[k]`` on row ``k``, idle below."""
    if type(history) is list:
        end = col + width
        for row, task in zip(history, running):
            row[col:end] = [task] * width
        for row in history[len(running):]:
            row[col:end] = [idle] * width
    else:
        history[:, col:col + width] = idle
        for slot, task in enumerate(running):
            history[slot, col:col + width] = task


def simulate_static(
    offsets: Sequence[int],
    periods: Sequence[int],
    wcets: Sequence[int],
    deadlines: Sequence[int],
    T: int,
    m: int,
    key: str,
    rank: Sequence[int] | None = None,
    max_cycles: int = 64,
    idle: int = -1,
):
    """Run the block-stepping simulation until decisive.

    Returns ``(schedulable, missed, cycles_simulated, history)`` with
    exactly the scalar loop's semantics: ``schedulable`` True on a
    repeated hyperperiod-aligned state (``history`` then holds the last
    simulated hyperperiod, the repeating cycle), False on the first
    deadline miss (``missed`` is the scalar loop's first-by-task-index
    ``(task, release, deadline)``), None when ``max_cycles``
    hyperperiods past the largest offset pass without either.
    """
    if key == STATIC_RANK:
        if rank is None:
            raise ValueError("key='rank' requires a rank vector")
    elif key != STATIC_EDF:
        raise ValueError(f"unknown static key {key!r}")
    n = len(wcets)
    o_max = max(offsets)
    start_check = ((o_max + T - 1) // T) * T  # first aligned state snapshot
    horizon = start_check + max_cycles * T

    # per task: the active job's (release, abs_deadline, remaining)
    release = [0] * n
    abs_dl = [0] * n
    remaining = [0] * n  # 0 = no active job
    next_release = list(offsets)

    history = _new_history(m, T, idle)
    prev_state: tuple | None = None
    #: the standing priority queue of active jobs, sorted by static key
    #: — maintained incrementally (insort on release, filter on
    #: completion) instead of the per-slot rebuild of the scalar loop
    queue: list[tuple[int, int]] = []

    t = 0
    while t <= horizon:
        if t >= start_check and t % T == 0:
            state = tuple(
                (remaining[i], release[i] - t) if remaining[i] else None
                for i in range(n)
            )
            if state == prev_state:
                return True, None, t // T, history
            prev_state = state
        if t == horizon:
            break

        # releases at time t: insert each new job into the standing
        # priority queue (constrained deadlines guarantee the task has
        # no live entry — an incomplete predecessor would have missed
        # at or before this release, and windows stop at deadlines).
        # The slot-by-slot loop's per-slot release scan fires only at
        # these instants, since windows always stop at the next release.
        for i in range(n):
            if next_release[i] == t:
                next_release[i] += periods[i]
                if wcets[i] > 0:
                    release[i] = t
                    dl = t + deadlines[i]
                    abs_dl[i] = dl
                    remaining[i] = wcets[i]
                    insort(
                        queue, (dl, i) if key == STATIC_EDF else (rank[i], i)
                    )

        # the window: no release, no active job's deadline, no aligned
        # snapshot (multiples of T) strictly inside it — the only
        # scheduling events within are job completions
        w = T - t % T
        nr = min(next_release) - t
        if nr < w:
            w = nr
        if key == STATIC_EDF:
            if queue:  # EDF queue is deadline-sorted: clamp is its head
                d = queue[0][0] - t
                if d < w:
                    w = d
        else:
            for _, i in queue:
                d = abs_dl[i] - t  # stop *at* the earliest active deadline
                if d < w:
                    w = d
        window_end = t + (w if w > 0 else 1)  # due-now deadline: one slot

        # staircase inside the window: the top-m remaining jobs run;
        # when one completes, the next queued job steps onto its row —
        # exactly what the per-slot sort-and-pick produces, since the
        # static order is fixed and completed jobs drop out of the sort
        while t < window_end:
            running = [i for _, i in queue[:m]]
            delta = window_end - t
            for i in running:
                r = remaining[i]
                if r < delta:
                    delta = r
            _fill_block(history, running, m, t % T, delta, idle)
            completed = False
            for i in running:
                left = remaining[i] - delta
                remaining[i] = left
                if not left:
                    completed = True
            t += delta
            if completed:
                queue = [e for e in queue if remaining[e[1]]]
                if not queue and t < window_end:
                    _fill_block(history, [], m, t % T, window_end - t, idle)
                    t = window_end

        # miss check: remaining work at (or past) the absolute deadline.
        # Every active job's deadline is >= window_end by the clamp, so
        # no miss can occur strictly inside the window — this check
        # fires at the same t, for the same first task index, as the
        # per-slot loop's
        for i in range(n):
            if remaining[i] and t >= abs_dl[i]:
                return False, (i, release[i], abs_dl[i]), t // T, None

    return None, None, max_cycles, None
