"""Batched counting rows for the propagation fixpoint.

The four counting propagators (``ExactSumBool``/``WeightedExactSumBool``
/``CountEq``/``WeightedCountEq``) are the engine's tier-0 workhorses:
on the paper-scale CSP2 grids they receive the large majority of all
event wakes, and each wake costs a Python method call just to bump two
or three counters and check a bound.  This module stacks *all* their
rows into one shared store the engine consults inline:

* **Row matrix.**  Every row is a set of ``(var_index, value_bit,
  coefficient)`` cells plus a target ``total`` (and ``cmax`` for the
  weighted rows) — exported by each propagator's ``batch_row()``.  The
  whole system of rows is one sparse ``(rows x vars)`` masked matrix.
* **Reset pass.**  :meth:`CountingKernel.reset` evaluates every row's
  aggregates from the current domain masks in a single vectorised
  sweep over the matrix (pure-Python fallback when numpy is masked)
  and re-points each propagator's ``_c`` at the kernel-owned list, so
  ``propagate`` reads the shared aggregates with no synchronisation.
* **Inline update tables.**  :attr:`CountingKernel.table` maps each
  variable to the tuple of row entries its events touch.  The engine's
  dispatch loop updates the aggregates *inline* (no function call) and
  re-enqueues a row only when its bounds say propagation could act —
  exactly the skip condition the scalar ``on_event`` hooks implement,
  so per-node search decisions are byte-identical (pinned by
  ``tests/test_engine_regression.py``).

Per-event numpy calls are deliberately absent: one numpy dispatch costs
more than an entire node's Python bookkeeping at these row sizes, so
numpy is reserved for the reset sweep (and the parity cross-check),
where one call covers the whole matrix.

Trail safety: aggregate lists are snapshotted once per node onto the
engine's undo log before the first inline update (the same
``(list, None, tuple)`` record the scalar propagators use), guarded by
a per-row stamp holder; deactivated (entailed) rows are skipped first,
keeping their aggregates frozen exactly like the scalar engine.
"""

from __future__ import annotations

from repro.kernels import numpy_or_none

__all__ = ["CountingKernel", "SHADOW_MASK_LIMIT"]

#: domain bitmasks must stay below this for int64 shadow/matrix gathers
SHADOW_MASK_LIMIT = 1 << 62

#: the TRUE bit of 2-value boolean domains (bool rows count this value)
_TRUE = 0b10


def _or_all(bits) -> int:
    """OR an iterable of bit masks together."""
    out = 0
    for b in bits:
        out |= b
    return out


class _Row:
    """One counting row: identity, cells and the shared aggregate list."""

    __slots__ = ("pid", "prop", "kind", "slots", "cells", "total", "cmax", "c", "st")

    def __init__(self, pid, prop, kind, slots, cells, total, cmax):
        self.pid = pid
        self.prop = prop
        self.kind = kind
        self.slots = slots
        self.cells = cells  # [(var_index, value_bit, coefficient), ...]
        self.total = total
        self.cmax = cmax
        self.c = [0] * slots  # kernel-owned aggregates; prop._c aliases it
        self.st = [-1]  # per-row once-per-node trail stamp holder


class CountingKernel:
    """Shared aggregate store + per-variable inline wake tables."""

    def __init__(self, rows: list[_Row], n_vars: int) -> None:
        self.rows = rows
        self._matrix_cache = None  # lazy numpy CSR-ish arrays
        # int64 gathers are only sound while every touched mask fits
        self._np_ok = all(
            cell[1] < SHADOW_MASK_LIMIT for row in rows for cell in row.cells
        )
        tables: list[dict[int, list]] = [{} for _ in range(n_vars)]
        for row in rows:
            # merge duplicate occurrences per variable (CountEq may watch a
            # variable several times; one event must update the aggregates
            # once per occurrence, so the merged entry carries the sum)
            merged: dict[int, int] = {}
            bit_of: dict[int, int] = {}
            for vi, bit, coef in row.cells:
                merged[vi] = merged.get(vi, 0) + coef
                bit_of[vi] = bit
            # every entry is the same uniform 7-tuple: the bool rows are
            # just count rows whose counted value-bit is TRUE (a 2-value
            # domain only ever sees assign events, and the gain/loss
            # bookkeeping coincides), and the 2-slot rows are 3-slot rows
            # without the free-count cell (w3 gates it)
            w3 = row.slots == 3
            for vi in merged:
                bit = bit_of[vi] if row.kind == "count" else _TRUE
                tables[vi].setdefault(bit, []).append(
                    (row.pid, row.c, row.st, row.total,
                     merged[vi], w3, row.cmax)
                )
        #: per-variable dict ``value_bit -> tuple of inline entries``
        #: ``(pid, c, st, total, coef, w3, cmax)``, indexed by
        #: ``var.index``.  Keying by bit lets the dispatch loop jump
        #: straight from an event's removed/assigned bits to the rows
        #: they affect, instead of scanning every row watching the var.
        self.table: list[dict[int, tuple]] = [
            {bit: tuple(entries) for bit, entries in t.items()} for t in tables
        ]
        #: per-variable OR of the keyed bits: masking an event's removed
        #: bits with this skips the non-keyed ones before any dict lookup
        #: (and makes every surviving lookup a guaranteed hit)
        self.bitmask: list[int] = [
            0 if not t else _or_all(t) for t in self.table
        ]

    # -- construction --------------------------------------------------------
    @classmethod
    def build(cls, batched: list[tuple[int, object]], n_vars: int):
        """Collect ``batch_row()`` exports of the given ``(pid, prop)``
        pairs; None when the list is empty."""
        rows = []
        for pid, prop in batched:
            kind, slots, cells, total, cmax = prop.batch_row()
            rows.append(_Row(pid, prop, kind, slots, list(cells), total, cmax))
        if not rows:
            return None
        return cls(rows, n_vars)

    # -- the single-pass reset sweep ----------------------------------------
    def _matrix(self, np):
        """The stacked row matrix as flat parallel arrays (built once)."""
        if self._matrix_cache is None:
            cv, cb, cc, cr = [], [], [], []
            for r, row in enumerate(self.rows):
                for vi, bit, coef in row.cells:
                    cv.append(vi)
                    cb.append(bit)
                    cc.append(coef)
                    cr.append(r)
            self._matrix_cache = (
                np.array(cv, dtype=np.int64),
                np.array(cb, dtype=np.int64),
                np.array(cc, dtype=np.int64),
                np.array(cr, dtype=np.int64),
            )
        return self._matrix_cache

    def reset(self, state) -> None:
        """Recompute every row's aggregates from the current domains.

        One vectorised pass over the stacked matrix when numpy is
        available (and every mask fits int64), else the scalar sweep;
        both write the same values.  Each propagator's ``_c`` is
        re-pointed at the kernel-owned list so ``propagate`` and the
        inline tables observe the same aggregates with no copying.
        """
        np = numpy_or_none()
        if np is not None and self._np_ok:
            self._reset_numpy(state, np)
        else:
            aggregates = self.evaluate(state)
            for row, agg in zip(self.rows, aggregates):
                row.c[:] = agg
        for row in self.rows:
            row.st[0] = -1
            row.prop._c = row.c

    def _reset_numpy(self, state, np) -> None:
        cv, cb, cc, cr = self._matrix(np)
        shadow = getattr(state, "shadow", None)
        if shadow is not None:
            v = shadow[cv]
        else:
            masks = state.masks
            v = np.fromiter(
                (masks[i] for i in cv.tolist()), dtype=np.int64, count=len(cv)
            )
        influences = (v & cb) != 0
        fixed = influences & (v == cb)
        cand = influences & ~fixed
        zeros = np.zeros(len(cc), dtype=np.int64)
        fix_w = np.where(fixed, cc, zeros)
        cand_w = np.where(cand, cc, zeros)
        n_rows = len(self.rows)
        agg_fix = np.zeros(n_rows, dtype=np.int64)
        agg_cw = np.zeros(n_rows, dtype=np.int64)
        agg_cn = np.zeros(n_rows, dtype=np.int64)
        np.add.at(agg_fix, cr, fix_w)
        np.add.at(agg_cw, cr, cand_w)
        np.add.at(agg_cn, cr, cand.astype(np.int64))
        for r, row in enumerate(self.rows):
            if row.slots == 2:
                row.c[:] = (int(agg_fix[r]), int(agg_cw[r]))
            else:
                row.c[:] = (int(agg_fix[r]), int(agg_cw[r]), int(agg_cn[r]))

    def evaluate(self, state) -> list[list[int]]:
        """Every row's aggregates, computed fresh by the scalar sweep.

        The reference implementation the numpy reset pass is
        parity-tested against; also usable by tests to cross-check the
        incrementally-maintained aggregates mid-search.
        """
        out = []
        masks = state.masks
        for row in self.rows:
            fix = cand_w = cand_n = 0
            for vi, bit, coef in row.cells:
                m = masks[vi]
                if m & bit:
                    if m == bit:
                        fix += coef
                    else:
                        cand_w += coef
                        cand_n += 1
            if row.slots == 2:
                out.append([fix, cand_w])
            else:
                out.append([fix, cand_w, cand_n])
        return out
