"""Interval-load demand kernels: all-slot-pairs tables and forced loads.

The necessary-condition tests (:mod:`repro.analysis.necessary`) reason
about the demand enclosed in — or forced into — every scan interval
``[a, b]`` of a hyperperiod.  This module hosts the array arithmetic:

* :func:`enclosed_excess_witness` — the all-pairs enclosed-demand table
  ``D[a, b]`` (one 2-D prefix sum over a (start, end) histogram) minus
  capacity ``m (b - a + 1)``, reporting the row-major-first maximal
  excess when positive;
* :func:`interval_min_processors` — the same table's
  ``max ceil(D[a, b] / (b - a + 1))``, the processor-count lower bound;
* :func:`forced_demand_witness` — the partial-overlap strengthening:
  per candidate interval, every job is forced to run
  ``max(0, C - |window outside [a, b]|)`` units inside it.

Each function has a numpy path (``np.cumsum`` prefix sums, vectorised
overlap clips) and a pure-Python fallback used when numpy is absent or
masked (``REPRO_NO_NUMPY``).  The fallback trades the ``O(T^2)`` table
for an ``O(T)``-memory rolling row sweep but returns **identical**
results — including the numpy path's first-occurrence-in-row-major
tie-break for the witness interval, which the parity suite pins.

This module is a leaf: inputs are plain sequences of ints, not model
objects.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.kernels import numpy_or_none

__all__ = [
    "enclosed_excess_witness",
    "interval_min_processors",
    "forced_demand_witness",
]

Span = "tuple[int, int, int]"  # (start, end, wcet) of one job window


def _demand_table_numpy(np, spans, T: int):
    """``D[a, b]`` = total demand of windows wholly inside ``[a, b]``."""
    hist = np.zeros((T, T), dtype=np.int64)
    for s, e, c in spans:
        hist[s, e] += c
    # suffix-sum over starts (s >= a), prefix-sum over ends (e <= b)
    table = np.flip(np.cumsum(np.flip(hist, axis=0), axis=0), axis=0)
    np.cumsum(table, axis=1, out=table)
    return table


def _iter_rows_desc(spans, T: int):
    """Yield ``(a, row)`` for ``a = T-1 .. 0``, where ``row[b]`` is the
    enclosed demand ``D[a, b]`` — O(T) memory via a rolling histogram."""
    by_start: list[list[tuple[int, int]]] = [[] for _ in range(T)]
    for s, e, c in spans:
        by_start[s].append((e, c))
    hist = [0] * T  # over ends, for windows with start >= a
    for a in range(T - 1, -1, -1):
        for e, c in by_start[a]:
            hist[e] += c
        row = [0] * T
        acc = 0
        for b in range(T):
            acc += hist[b]
            row[b] = acc
        yield a, row


def enclosed_excess_witness(
    spans: Sequence[tuple],
    T: int,
    m: int,
    max_cells: int,
) -> "tuple[tuple[int, int, int] | None, bool]":
    """The all-pairs enclosed-demand check: ``(witness, tabled)``.

    ``witness`` is ``(a, b, demand)`` for the interval of *maximal*
    excess ``D[a, b] - m (b - a + 1)`` when that excess is positive
    (ties broken by the first row-major ``(a, b)``, matching
    ``np.argmax`` over the flattened table); None when no interval is
    over capacity.  ``tabled`` is False when ``T^2 > max_cells`` — the
    scan was skipped entirely and the caller must fall back to pair
    enumeration or abstain.
    """
    if T * T > max_cells:
        return None, False
    np = numpy_or_none()
    if np is not None:
        table = _demand_table_numpy(np, spans, T)
        lengths = np.arange(T)[None, :] - np.arange(T)[:, None] + 1
        excess = np.where(lengths > 0, table - m * lengths, np.int64(-1))
        flat = int(np.argmax(excess))
        a, b = divmod(flat, T)
        if excess[a, b] > 0:
            return (int(a), int(b), int(table[a, b])), True
        return None, True
    # rolling sweep: track the maximal excess and, among equal maxima,
    # the smallest flat index a*T + b — np.argmax's first occurrence
    best = None
    best_flat = -1
    best_demand = 0
    for a, row in _iter_rows_desc(spans, T):
        base = a * T
        for b in range(a, T):
            excess = row[b] - m * (b - a + 1)
            flat = base + b
            if (
                best is None
                or excess > best
                or (excess == best and flat < best_flat)
            ):
                best = excess
                best_flat = flat
                best_demand = row[b]
    if best is not None and best > 0:
        a, b = divmod(best_flat, T)
        return (a, b, best_demand), True
    return None, True


def interval_min_processors(
    spans: Sequence[tuple], T: int, max_cells: int
) -> int | None:
    """``max ceil(D[a, b] / (b - a + 1))`` over all scan intervals — the
    interval-load processor lower bound; None when over ``max_cells``."""
    if T * T > max_cells or T == 0:
        return None
    np = numpy_or_none()
    if np is not None:
        table = _demand_table_numpy(np, spans, T)
        lengths = np.arange(T)[None, :] - np.arange(T)[:, None] + 1
        valid = lengths > 0
        need = -(-table[valid] // lengths[valid])  # ceil division
        return int(need.max()) if need.size else None
    best = 0
    for a, row in _iter_rows_desc(spans, T):
        for b in range(a, T):
            need = -(-row[b] // (b - a + 1))
            if need > best:
                best = need
    return best


def forced_demand_witness(
    f_start: Sequence[int],
    f_end: Sequence[int],
    f_job: Sequence[int],
    wcet: Sequence[int],
    wlen: Sequence[int],
    starts: Sequence[int],
    ends: Sequence[int],
    m: int,
) -> "tuple[int, int, int] | None":
    """First candidate interval whose *forced* demand exceeds capacity.

    Fragments (a wrapped window contributes two) are given by parallel
    arrays ``f_start``/``f_end``/``f_job``; per job, ``wcet`` and the
    full window length ``wlen``.  Candidates are scanned in ``starts``
    x ``ends`` order (both ascending) and the first ``(a, b, demand)``
    with ``demand > m (b - a + 1)`` is returned, or None.
    """
    np = numpy_or_none()
    if np is not None:
        fs = np.asarray(f_start, dtype=np.int64)
        fe = np.asarray(f_end, dtype=np.int64)
        fj = np.asarray(f_job, dtype=np.int64)
        wc = np.asarray(wcet, dtype=np.int64)
        wl = np.asarray(wlen, dtype=np.int64)
        for a in starts:
            for b in ends:
                if b < a:
                    continue
                overlap_f = np.clip(
                    np.minimum(fe, b) - np.maximum(fs, a) + 1, 0, None
                )
                overlap = np.zeros(len(wc), dtype=np.int64)
                np.add.at(overlap, fj, overlap_f)
                forced = np.clip(wc - (wl - overlap), 0, None)
                demand = int(forced.sum())
                if demand > m * (b - a + 1):
                    return int(a), int(b), demand
        return None
    n_jobs = len(wcet)
    n_frag = len(f_start)
    overlap = [0] * n_jobs
    for a in starts:
        for b in ends:
            if b < a:
                continue
            for j in range(n_jobs):
                overlap[j] = 0
            for k in range(n_frag):
                o = min(f_end[k], b) - max(f_start[k], a) + 1
                if o > 0:
                    overlap[f_job[k]] += o
            demand = 0
            for j in range(n_jobs):
                forced = wcet[j] - (wlen[j] - overlap[j])
                if forced > 0:
                    demand += forced
            if demand > m * (b - a + 1):
                return a, b, demand
    return None
