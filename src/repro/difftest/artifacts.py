"""JSONL disagreement artifacts: the difftest campaign's paper trail.

A campaign that finds nothing writes a single header line (so CI can
archive proof that the run *happened* with a given config); a campaign
that finds disagreements appends one self-contained line per finding,
carrying the full :class:`~repro.solvers.problem.SolveReport` provenance
of every solver on both the original and the shrunk instance.  Each
finding line round-trips through :meth:`Finding.from_dict`, so a
disagreement found by a nightly fuzz run can be replayed — exact
instance, exact budgets, exact seed — in a debugger or pinned as a
regression test without re-fuzzing.

Format: line 1 is ``{"kind": "difftest-header", "config": ...,
"summary": ...}``; every further line is one ``Finding.to_dict()``.
"""

from __future__ import annotations

import json
from typing import Any

from repro.difftest.core import DiffTestReport, Finding

__all__ = ["write_artifacts", "iter_artifacts"]

#: the ``kind`` tag of the leading header line
HEADER_KIND = "difftest-header"


def write_artifacts(path: str, report: DiffTestReport) -> str:
    """Write a campaign's header + findings as JSONL; returns ``path``."""
    with open(path, "w") as fh:
        fh.write(json.dumps({
            "kind": HEADER_KIND,
            "config": report.config.to_dict(),
            "summary": report.to_dict(),
        }) + "\n")
        for finding in report.findings:
            fh.write(json.dumps(finding.to_dict()) + "\n")
    return path


def iter_artifacts(path: str) -> tuple[dict[str, Any], list[Finding]]:
    """Read an artifact file back: ``(header, findings)``.

    Raises ``ValueError`` when the file does not start with a difftest
    header (it is probably some other JSONL journal).
    """
    with open(path) as fh:
        lines = [json.loads(line) for line in fh if line.strip()]
    if not lines or lines[0].get("kind") != HEADER_KIND:
        raise ValueError(f"{path} is not a difftest artifact file")
    return lines[0], [Finding.from_dict(d) for d in lines[1:]]
