"""The differential-testing engine: fuzz, cross-check, shrink, report.

One :func:`run_difftest` call fans a seeded generator grid across every
configured solver through the normal :func:`~repro.solvers.problem.solve_iter`
front door (so difftest exercises exactly the code paths production
uses), then applies :func:`cross_check` to each instance's reports.

The cross-check is *capability-aware* — the same trust rules the racing
portfolio applies at answer time:

* a FEASIBLE claim must be substantiated: a carried schedule is
  re-validated against C1-C4, a schedule-free FEASIBLE is accepted only
  from a certified analysis bound (``decided_by`` of ``sufficient:...``);
* an INFEASIBLE claim counts as a proof only when the reporting family's
  registry metadata carries ``proves_infeasibility`` — an incomplete
  family answering INFEASIBLE at all is itself a finding
  (``unsound-infeasible``), because the meta-solvers are required to
  downgrade such answers;
* an ``edf-exact`` infeasibility proof is additionally replayed through
  the *independent* simulator of :mod:`repro.baselines.priorities`
  (different code, same policy) — the claimed uniprocessor miss must
  reproduce;
* UNKNOWN never disagrees with anything (a budget overrun is not a
  verdict).

A ``verdict-disagreement`` finding — some solver proves FEASIBLE while
another proves INFEASIBLE on the same instance — is the smoking gun this
subsystem exists for.  Each finding is (optionally) shrunk to a
1-minimal counterexample by :mod:`repro.difftest.shrink` and carries the
full :class:`~repro.solvers.problem.SolveReport` provenance of both the
original and the shrunk instance for the JSONL artifact trail.
"""

from __future__ import annotations

import time
from collections.abc import Callable, Sequence
from dataclasses import dataclass, field
from typing import Any

from repro.generator.random_systems import GeneratorConfig, generate_instances
from repro.schedule.validate import validate
from repro.solvers.base import Feasibility
from repro.solvers.problem import Problem, SolveReport, solve_iter, solve_problem
from repro.solvers.registry import is_solver_name, solver_info
from repro.solvers.spec import SolverSpec

__all__ = [
    "DEFAULT_SOLVERS",
    "VERDICT_DISAGREEMENT",
    "INVALID_WITNESS",
    "MISSING_WITNESS",
    "UNSOUND_INFEASIBLE",
    "DiffTestConfig",
    "Finding",
    "DiffTestReport",
    "cross_check",
    "run_difftest",
]

#: the standing cross-check set: the EDF oracle against every complete
#: decision path (both engines, learning, SAT, and the screened cascade)
DEFAULT_SOLVERS = ("edf-exact", "csp2+dc", "csp2+learn", "sat", "screen+csp2+dc")

#: finding kinds
VERDICT_DISAGREEMENT = "verdict-disagreement"
INVALID_WITNESS = "invalid-witness"
MISSING_WITNESS = "missing-witness"
UNSOUND_INFEASIBLE = "unsound-infeasible"

#: replay budget (hyperperiods) for confirming an edf-exact miss claim
_REPLAY_CYCLES = 1024


@dataclass(frozen=True)
class DiffTestConfig:
    """One differential-testing campaign, fully determined by its fields.

    The generator knobs mirror :class:`~repro.generator.random_systems.
    GeneratorConfig`; the default grid (``n=5, tmax=5, m ~ U(1..n-1)``)
    keeps hyperperiods small enough that every solver answers in
    milliseconds while still covering FEASIBLE, INFEASIBLE and
    not-EDF-schedulable instances.
    """

    solvers: tuple[str, ...] = DEFAULT_SOLVERS
    instances: int = 100
    seed: int = 0
    n: int = 5
    tmax: int = 5
    m: int | str = "uniform"
    order: str = "d-first"
    offsets: str = "uniform"
    time_limit: float | None = 10.0
    node_limit: int | None = None
    shrink: bool = True
    shrink_budget: int = 200
    jobs: int = 1

    def __post_init__(self) -> None:
        if not self.solvers:
            raise ValueError("difftest needs at least one solver")
        if len(set(self.solvers)) != len(self.solvers):
            raise ValueError(f"duplicate solvers in {self.solvers}")
        if self.instances < 0:
            raise ValueError(f"instances must be >= 0, got {self.instances}")
        if self.jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {self.jobs}")
        for name in self.solvers:
            if not is_solver_name(name):
                raise ValueError(
                    f"unknown solver {name!r} in difftest configuration"
                )

    def generator_config(self) -> GeneratorConfig:
        """The instance-generator knobs as a :class:`GeneratorConfig`."""
        return GeneratorConfig(
            n=self.n, tmax=self.tmax, m=self.m,
            order=self.order, offsets=self.offsets,
        )

    def to_dict(self) -> dict[str, Any]:
        """JSON-able form, recorded in the artifact header."""
        return {
            "solvers": list(self.solvers),
            "instances": self.instances,
            "seed": self.seed,
            "n": self.n,
            "tmax": self.tmax,
            "m": self.m,
            "order": self.order,
            "offsets": self.offsets,
            "time_limit": self.time_limit,
            "node_limit": self.node_limit,
            "shrink": self.shrink,
            "shrink_budget": self.shrink_budget,
            "jobs": self.jobs,
        }


@dataclass(frozen=True)
class Finding:
    """One cross-check failure, with everything needed to reproduce it.

    ``reports`` are the raw per-solver :class:`SolveReport` records of
    the failing instance; when shrinking ran, ``shrunk_problem`` /
    ``shrunk_reports`` hold the 1-minimal counterexample and its
    re-solved reports.
    """

    kind: str
    detail: str
    problem: Problem
    solvers: tuple[str, ...]
    reports: tuple[SolveReport, ...]
    shrunk_problem: Problem | None = None
    shrunk_reports: tuple[SolveReport, ...] = ()

    def to_dict(self) -> dict[str, Any]:
        """JSONL-ready form with full report provenance."""
        return {
            "kind": self.kind,
            "detail": self.detail,
            "solvers": list(self.solvers),
            "problem": self.problem.to_dict(),
            "reports": [r.to_dict() for r in self.reports],
            "shrunk_problem": (
                None if self.shrunk_problem is None
                else self.shrunk_problem.to_dict()
            ),
            "shrunk_reports": [r.to_dict() for r in self.shrunk_reports],
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "Finding":
        """Inverse of :meth:`to_dict`."""
        return cls(
            kind=data["kind"],
            detail=data["detail"],
            solvers=tuple(data["solvers"]),
            problem=Problem.from_dict(data["problem"]),
            reports=tuple(SolveReport.from_dict(r) for r in data["reports"]),
            shrunk_problem=(
                None if data.get("shrunk_problem") is None
                else Problem.from_dict(data["shrunk_problem"])
            ),
            shrunk_reports=tuple(
                SolveReport.from_dict(r) for r in data.get("shrunk_reports", ())
            ),
        )


@dataclass
class DiffTestReport:
    """Outcome of one campaign: verdict census plus every finding."""

    config: DiffTestConfig
    findings: list[Finding] = field(default_factory=list)
    #: solver name -> status label -> count
    verdicts: dict[str, dict[str, int]] = field(default_factory=dict)
    instances: int = 0
    cells: int = 0
    elapsed: float = 0.0

    @property
    def ok(self) -> bool:
        """True iff the campaign surfaced no finding of any kind."""
        return not self.findings

    def to_dict(self) -> dict[str, Any]:
        """JSON-able summary (the artifact header's ``summary`` field)."""
        return {
            "ok": self.ok,
            "instances": self.instances,
            "cells": self.cells,
            "elapsed": self.elapsed,
            "verdicts": self.verdicts,
            "findings": [
                {"kind": f.kind, "detail": f.detail} for f in self.findings
            ],
        }

    def summary(self) -> str:
        """Multi-line human-readable census (the CLI's default output)."""
        lines = [
            f"{self.instances} instance(s) x {len(self.config.solvers)} "
            f"solver(s) = {self.cells} cells in {self.elapsed:.2f}s"
        ]
        for solver in self.config.solvers:
            counts = self.verdicts.get(solver, {})
            census = "  ".join(
                f"{status}: {counts[status]}" for status in sorted(counts)
            )
            lines.append(f"  {solver:<24} {census}")
        if self.ok:
            lines.append("no disagreements, all witnesses validate")
        else:
            lines.append(f"{len(self.findings)} FINDING(S):")
            for f in self.findings:
                lines.append(f"  [{f.kind}] {f.detail}")
        return "\n".join(lines)


def _witness_findings(problem: Problem, report: SolveReport) -> list[tuple[str, str]]:
    """Witness-level failures of one report: ``(kind, detail)`` pairs."""
    out: list[tuple[str, str]] = []
    status = report.status
    decided_by = report.decided_by or ""
    if status is Feasibility.FEASIBLE:
        if report.schedule is not None:
            check = validate(report.schedule)
            if not check.ok:
                out.append((
                    INVALID_WITNESS,
                    f"{report.solver}: FEASIBLE schedule violates "
                    f"{len(check.violations)} constraint(s): "
                    f"{check.violations[0]}",
                ))
        elif not decided_by.startswith("sufficient:"):
            out.append((
                MISSING_WITNESS,
                f"{report.solver}: FEASIBLE without a schedule and without "
                f"a certified sufficient bound (decided_by={decided_by!r})",
            ))
    elif status is Feasibility.INFEASIBLE:
        info = solver_info(SolverSpec.parse(report.solver))
        if not info.proves_infeasibility:
            out.append((
                UNSOUND_INFEASIBLE,
                f"{report.solver}: family lacks proves_infeasibility yet "
                "reported INFEASIBLE (meta-solvers must downgrade this)",
            ))
        if decided_by == "edf-exact:miss":
            out.extend(_replay_edf_miss(report))
    return out


def _replay_edf_miss(report: SolveReport) -> list[tuple[str, str]]:
    """Independently confirm an ``edf-exact`` miss proof by simulation.

    Uses :func:`repro.baselines.priorities.global_edf` — a separate
    implementation of the same deterministic policy — so a bug in the
    oracle's own loop cannot vouch for itself.  Inconclusive replays
    (cycle cap hit first) are not findings; a *schedulable* replay is.
    """
    from repro.baselines.priorities import global_edf

    sim = global_edf(
        report.cloned_system, report.problem.platform.m,
        max_cycles=_REPLAY_CYCLES,
    )
    if sim.schedulable is True:
        return [(
            INVALID_WITNESS,
            f"{report.solver}: claimed EDF miss does not reproduce — the "
            "independent EDF simulation finds the system schedulable",
        )]
    return []


def cross_check(
    problem: Problem, reports: Sequence[SolveReport]
) -> list[Finding]:
    """Cross-check one instance's per-solver reports.

    Returns witness-level findings for each individual report plus (at
    most) one ``verdict-disagreement`` finding when a trusted FEASIBLE
    and a trusted INFEASIBLE coexist.  UNKNOWN/skipped reports are
    ignored: an overrun is not a verdict.
    """
    findings: list[Finding] = []
    solvers = tuple(r.solver for r in reports)
    witness_ok: dict[int, bool] = {}
    for idx, report in enumerate(reports):
        issues = _witness_findings(problem, report)
        witness_ok[idx] = not issues
        for kind, detail in issues:
            findings.append(Finding(
                kind=kind, detail=detail, problem=problem,
                solvers=solvers, reports=tuple(reports),
            ))
    feasible = [
        r.solver for i, r in enumerate(reports)
        if r.status is Feasibility.FEASIBLE and witness_ok[i]
    ]
    infeasible = [
        r.solver for i, r in enumerate(reports)
        if r.status is Feasibility.INFEASIBLE and witness_ok[i]
        and solver_info(SolverSpec.parse(r.solver)).proves_infeasibility
    ]
    if feasible and infeasible:
        label = problem.label or "instance"
        findings.append(Finding(
            kind=VERDICT_DISAGREEMENT,
            detail=(
                f"{label}: {', '.join(feasible)} prove(s) FEASIBLE while "
                f"{', '.join(infeasible)} prove(s) INFEASIBLE"
            ),
            problem=problem,
            solvers=solvers,
            reports=tuple(reports),
        ))
    return findings


def _solve_all(
    problem: Problem, solvers: Sequence[str]
) -> list[SolveReport]:
    """Solve one problem with every solver, serially (shrink predicate)."""
    return [solve_problem(problem, s, check=False) for s in solvers]


def _shrunk(finding: Finding, config: DiffTestConfig) -> Finding:
    """Shrink a finding's instance while a same-kind finding reproduces."""
    from repro.difftest.shrink import shrink_problem

    def still_fails(candidate: Problem) -> bool:
        reports = _solve_all(candidate, config.solvers)
        return any(
            f.kind == finding.kind for f in cross_check(candidate, reports)
        )

    small = shrink_problem(
        finding.problem, still_fails, budget=config.shrink_budget
    )
    if small == finding.problem:
        return finding
    return Finding(
        kind=finding.kind,
        detail=finding.detail,
        problem=finding.problem,
        solvers=finding.solvers,
        reports=finding.reports,
        shrunk_problem=small,
        shrunk_reports=tuple(_solve_all(small, config.solvers)),
    )


def run_difftest(
    config: DiffTestConfig | None = None,
    progress: "Callable[[int, int], None] | None" = None,
) -> DiffTestReport:
    """Run one campaign: generate, solve the matrix, cross-check, shrink.

    Deterministic for a fixed config (``jobs > 1`` changes scheduling,
    never verdicts or findings).  ``progress(done, total)`` ticks once
    per completed (instance, solver) cell.
    """
    if config is None:
        config = DiffTestConfig()
    t0 = time.monotonic()
    grid = generate_instances(
        config.generator_config(), config.instances, seed=config.seed
    )
    problems = [
        Problem.of(
            inst.system,
            m=inst.m,
            time_limit=config.time_limit,
            node_limit=config.node_limit,
            seed=config.seed,
            label=f"difftest[{rank}] seed={inst.seed}",
        )
        for rank, inst in enumerate(grid)
    ]
    n_solvers = len(config.solvers)
    per_problem: dict[int, list[SolveReport]] = {}
    verdicts: dict[str, dict[str, int]] = {s: {} for s in config.solvers}
    # on_fault="record": a solver that crashes its worker yields a
    # ``fault:*`` report (status UNKNOWN underneath), which cross_check
    # ignores — one bad solver build must not abort the whole campaign
    for report in solve_iter(
        problems, config.solvers, jobs=config.jobs, check=False,
        progress=progress, on_fault="record",
    ):
        per_problem.setdefault(report.index // n_solvers, []).append(report)
        counts = verdicts[report.solver]
        counts[report.status_label] = counts.get(report.status_label, 0) + 1
    findings: list[Finding] = []
    for rank in sorted(per_problem):
        reports = sorted(per_problem[rank], key=lambda r: r.index)
        findings.extend(cross_check(problems[rank], reports))
    if config.shrink:
        findings = [_shrunk(f, config) for f in findings]
    return DiffTestReport(
        config=config,
        findings=findings,
        verdicts=verdicts,
        instances=len(problems),
        cells=len(problems) * n_solvers,
        elapsed=time.monotonic() - t0,
    )
