"""Differential testing: cross-check every complete solver, permanently.

The library now answers the same feasibility question along several
independent paths — the paper's CSP encodings on two engines, the SAT
pipeline, the conflict-directed learning search, the certified screening
cascade, and the exact global-EDF oracle
(:mod:`repro.baselines.edf_exact`).  Agreement between them used to be
spot-checked by seeded grids inside individual test files; PR 5's
review found a soundness bug those spot checks missed.  This package
turns the cross-check into a first-class, reusable subsystem:

* :mod:`repro.difftest.core` — generator-driven seeded fuzzing over any
  set of registered solvers: every instance is solved by every solver,
  verdicts are cross-checked *capability-aware* (an INFEASIBLE only
  counts as a proof when the family carries ``proves_infeasibility``),
  and every claimed witness schedule is re-validated through
  :mod:`repro.schedule.validate`;
* :mod:`repro.difftest.shrink` — deterministic greedy shrinking of a
  disagreeing instance to a 1-minimal counterexample (fewer tasks,
  fewer processors, smaller task parameters) while the failure
  reproduces;
* :mod:`repro.difftest.artifacts` — JSONL disagreement artifacts with
  full :class:`~repro.solvers.problem.SolveReport` provenance for every
  finding, original and shrunk.

Surfaced as ``repro-mgrts difftest`` and ``make difftest`` /
``make difftest-smoke`` (the smoke run gates CI): any future engine —
vectorised kernels, a sharded service backend — lands only after a
seeded fuzz run against the oracles reports zero disagreements.
"""

from repro.difftest.core import (
    DEFAULT_SOLVERS,
    DiffTestConfig,
    DiffTestReport,
    Finding,
    cross_check,
    run_difftest,
)
from repro.difftest.shrink import shrink_problem
from repro.difftest.artifacts import iter_artifacts, write_artifacts

__all__ = [
    "DEFAULT_SOLVERS",
    "DiffTestConfig",
    "DiffTestReport",
    "Finding",
    "cross_check",
    "run_difftest",
    "shrink_problem",
    "write_artifacts",
    "iter_artifacts",
]
