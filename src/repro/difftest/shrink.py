"""Deterministic greedy shrinking of a failing instance.

A fuzz-found disagreement on a 5-task instance with mixed offsets and
periods is a debugging chore; the same disagreement on ``[(0, 2, 3, 3)]
x 2`` on one processor is a unit test.  :func:`shrink_problem` reduces a
failing :class:`~repro.solvers.problem.Problem` to a 1-minimal
counterexample: no single further reduction step keeps the failure
alive.

The reduction order is fixed (drop a task, drop a processor, zero an
offset, halve/decrement a WCET, tighten a deadline, shorten a period),
candidates are generated purely from the current instance, and the
predicate is re-evaluated greedily first-success-restart — so for a
deterministic predicate the result is a pure function of the input, as
the planted-disagreement tests pin.  Every candidate keeps the Task
invariants (and constrained deadlines: ``D <= T`` is preserved, periods
never shrink below the deadline).
"""

from __future__ import annotations

from collections.abc import Callable, Iterator

from repro.model.platform import Platform
from repro.model.system import TaskSystem
from repro.model.task import Task
from repro.solvers.problem import Problem

__all__ = ["shrink_problem", "shrink_candidates"]


def _with_system(problem: Problem, tasks: list[Task]) -> Problem:
    """``problem`` with a replacement task list (budget/seed kept)."""
    return Problem(
        system=TaskSystem(tasks),
        platform=problem.platform,
        time_limit=problem.time_limit,
        node_limit=problem.node_limit,
        seed=problem.seed,
        label=problem.label,
        variable_limit=problem.variable_limit,
    )


def _with_m(problem: Problem, m: int) -> Problem:
    """``problem`` on a smaller identical platform."""
    return Problem(
        system=problem.system,
        platform=Platform.identical(m),
        time_limit=problem.time_limit,
        node_limit=problem.node_limit,
        seed=problem.seed,
        label=problem.label,
        variable_limit=problem.variable_limit,
    )


def shrink_candidates(problem: Problem) -> Iterator[Problem]:
    """All one-step reductions of ``problem``, in fixed priority order.

    Structural reductions (fewer tasks, fewer processors) come before
    parameter reductions so the big wins are tried first; within a
    parameter, a halving is tried before a decrement.
    """
    tasks = list(problem.system.tasks)
    n = len(tasks)

    # 1. drop one task (a TaskSystem needs at least one)
    if n > 1:
        for i in range(n):
            yield _with_system(problem, tasks[:i] + tasks[i + 1 :])

    # 2. drop one processor (identical platforms only — the generator's)
    if problem.platform.is_identical and problem.platform.m > 1:
        yield _with_m(problem, problem.platform.m - 1)

    # 3. per-task parameter reductions, smallest index first
    for i, t in enumerate(tasks):

        def patched(**kw) -> Problem:
            repl = Task(
                kw.get("offset", t.offset),
                kw.get("wcet", t.wcet),
                kw.get("deadline", t.deadline),
                kw.get("period", t.period),
            )
            return _with_system(problem, tasks[:i] + [repl] + tasks[i + 1 :])

        if t.offset > 0:
            yield patched(offset=0)
            if t.offset > 1:
                yield patched(offset=t.offset // 2)
        if t.wcet > 0:
            if t.wcet > 1:
                yield patched(wcet=t.wcet // 2)
            yield patched(wcet=t.wcet - 1)
        floor_d = max(1, t.wcet)
        if t.deadline > floor_d:
            if t.deadline // 2 >= floor_d:
                yield patched(deadline=t.deadline // 2)
            yield patched(deadline=t.deadline - 1)
        # keep D <= T so the instance stays constrained
        floor_t = max(1, t.deadline)
        if t.period > floor_t:
            yield patched(period=floor_t)
            if t.period - 1 > floor_t:
                yield patched(period=t.period - 1)


def shrink_problem(
    problem: Problem,
    still_fails: Callable[[Problem], bool],
    budget: int = 200,
) -> Problem:
    """Greedily reduce ``problem`` while ``still_fails`` stays true.

    Parameters
    ----------
    problem:
        The failing instance (``still_fails(problem)`` is assumed true;
        it is not re-checked).
    still_fails:
        The failure predicate — typically "re-solving with all solvers
        still produces a finding of the same kind".  Must be
        deterministic for the result to be.
    budget:
        Maximum predicate evaluations; on exhaustion the best-so-far
        reduction is returned (still a valid failing instance).

    Returns
    -------
    Problem
        A 1-minimal failing instance (unless the budget cut in first).
    """
    spent = 0
    current = problem
    improved = True
    while improved:
        improved = False
        for candidate in shrink_candidates(current):
            if spent >= budget:
                return current
            spent += 1
            if still_fails(candidate):
                current = candidate
                improved = True
                break
    return current
