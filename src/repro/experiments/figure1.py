"""Figure 1: the availability-interval pattern of the running example.

The paper's only figure shows, for Example 1 (m=2, n=3, hyperperiod 12),
each task's availability intervals over one hyperperiod.  We regenerate it
as an ASCII chart through the same rendering path any user system gets.
"""

from __future__ import annotations

from repro.generator.named import running_example
from repro.model.system import TaskSystem
from repro.schedule.render import render_intervals

__all__ = ["figure1"]


def figure1(system: TaskSystem | None = None) -> str:
    """The Figure 1 chart (for the running example by default)."""
    return render_intervals(system if system is not None else running_example())
