"""Table I: overruns per solver, solved vs unsolved instances.

Paper protocol (Section VII-C): 500 random problems with m=5, n=10,
Tmax=7, no utilization filtering, 30 s budget per (instance, solver) run;
count the runs that hit the budget ("overruns"), separately for instances
*solved by at least one solver* and instances no solver solved.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experiments.runner import ExperimentRun, run_instances
from repro.generator.random_systems import GeneratorConfig, generate_instances
from repro.solvers.registry import PAPER_SOLVERS

__all__ = ["Table1Config", "Table1Result", "run_table1"]


@dataclass(frozen=True)
class Table1Config:
    """Parameters; defaults are scaled down from the paper (see
    docs/ARCHITECTURE.md for the scaling rationale).

    ``paper_scale()`` restores the published 500 x 30 s protocol.
    """

    n_instances: int = 40
    n: int = 10
    m: int = 5
    tmax: int = 7
    time_limit: float = 1.0
    solvers: tuple[str, ...] = tuple(PAPER_SOLVERS)
    seed: int = 2009

    @classmethod
    def paper_scale(cls) -> "Table1Config":
        """The published protocol: 500 instances, 30 s per run."""
        return cls(n_instances=500, time_limit=30.0)

    def generator(self) -> GeneratorConfig:
        """The Section VII-A generator these parameters describe."""
        return GeneratorConfig(n=self.n, m=self.m, tmax=self.tmax)


@dataclass
class Table1Result:
    """Overrun counts by (group, solver) plus the underlying run."""

    config: Table1Config
    run: ExperimentRun
    #: group name -> solver -> overrun count; group "total" -> instance counts
    overruns: dict[str, dict[str, int]] = field(default_factory=dict)
    n_solved_instances: int = 0
    n_unsolved_instances: int = 0

    def rows(self) -> list[tuple[str, list[int], int]]:
        """(group label, per-solver overruns, group size) rows, paper order."""
        return [
            (
                "solved",
                [self.overruns["solved"][s] for s in self.config.solvers],
                self.n_solved_instances,
            ),
            (
                "unsolved",
                [self.overruns["unsolved"][s] for s in self.config.solvers],
                self.n_unsolved_instances,
            ),
        ]


def run_table1(
    config: Table1Config | None = None,
    run: ExperimentRun | None = None,
    progress=None,
    jobs: int = 1,
    cache_dir: str | None = None,
) -> Table1Result:
    """Run (or re-aggregate) the Table I experiment.

    Pass ``run`` to re-aggregate existing records (Tables II and III reuse
    the same records, as in the paper).  ``jobs`` and ``cache_dir`` are
    forwarded to the batch layer: the instance x solver matrix fans out
    over that many worker processes and already-cached cells are skipped.
    """
    config = config or Table1Config()
    if run is None:
        instances = generate_instances(
            config.generator(), config.n_instances, seed=config.seed
        )
        run = run_instances(
            instances,
            config.solvers,
            time_limit=config.time_limit,
            description=f"table1: {config.n_instances} instances "
            f"m={config.m} n={config.n} Tmax={config.tmax}",
            progress=progress,
            jobs=jobs,
            cache_dir=cache_dir,
        )

    by_instance = run.by_instance()
    overruns = {
        "solved": {s: 0 for s in config.solvers},
        "unsolved": {s: 0 for s in config.solvers},
    }
    n_solved = 0
    n_unsolved = 0
    for records in by_instance.values():
        solved = any(r.solved for r in records)
        group = "solved" if solved else "unsolved"
        if solved:
            n_solved += 1
        else:
            n_unsolved += 1
        for r in records:
            if r.overrun:
                overruns[group][r.solver] += 1
    return Table1Result(
        config=config,
        run=run,
        overruns=overruns,
        n_solved_instances=n_solved,
        n_unsolved_instances=n_unsolved,
    )
