"""Table II: unsolved instances vs the ``r > 1`` utilization filter.

Reuses Table I's records.  Unsolved instances (no solver found a schedule)
are split into *filtered* (``r > 1``, detectable by the cheap necessary
condition without any search) and *unfiltered*; overruns are counted per
solver within each group, and the paper additionally reports how many
unfiltered unsolved instances are *provably* infeasible (some solver
terminated with UNSAT inside the budget).

The filter predicate itself lives in
:func:`repro.analysis.necessary.utilization_exceeds` — the same
implementation the ``screen`` cascade's utilization certificate applies,
so this table and the screening layer can never disagree about which
instances the filter catches.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.necessary import utilization_exceeds
from repro.experiments.runner import ExperimentRun
from repro.experiments.table1 import Table1Config, Table1Result, run_table1

__all__ = ["Table2Result", "run_table2"]


@dataclass
class Table2Result:
    """Overrun counts for unsolved instances, split by the r>1 filter."""

    config: Table1Config
    run: ExperimentRun
    #: group -> solver -> overruns; groups "filtered" / "unfiltered"
    overruns: dict[str, dict[str, int]] = field(default_factory=dict)
    n_filtered: int = 0
    n_unfiltered: int = 0
    #: unfiltered unsolved instances some solver proved infeasible
    provably_unsolvable_unfiltered: int = 0

    def rows(self) -> list[tuple[str, list[int], int]]:
        """(group label, per-solver overruns, group size) rows, paper order."""
        return [
            (
                "filtered",
                [self.overruns["filtered"][s] for s in self.config.solvers],
                self.n_filtered,
            ),
            (
                "unfiltered",
                [self.overruns["unfiltered"][s] for s in self.config.solvers],
                self.n_unfiltered,
            ),
        ]


def run_table2(
    config: Table1Config | None = None,
    table1: Table1Result | None = None,
    progress=None,
) -> Table2Result:
    """Aggregate Table II (running Table I first if needed)."""
    if table1 is None:
        table1 = run_table1(config, progress=progress)
    config = table1.config
    run = table1.run

    overruns = {
        "filtered": {s: 0 for s in config.solvers},
        "unfiltered": {s: 0 for s in config.solvers},
    }
    n_filtered = 0
    n_unfiltered = 0
    provable = 0
    for records in run.by_instance().values():
        if any(r.solved for r in records):
            continue  # Table II looks at unsolved instances only
        # the same predicate the analysis cascade's utilization
        # certificate applies — Table II and `screen` cannot disagree
        r_ratio = records[0].utilization_ratio
        group = "filtered" if utilization_exceeds(r_ratio) else "unfiltered"
        if group == "filtered":
            n_filtered += 1
        else:
            n_unfiltered += 1
            if any(rec.status == "infeasible" for rec in records):
                provable += 1
        for rec in records:
            if rec.overrun:
                overruns[group][rec.solver] += 1
    return Table2Result(
        config=config,
        run=run,
        overruns=overruns,
        n_filtered=n_filtered,
        n_unfiltered=n_unfiltered,
        provably_unsolvable_unfiltered=provable,
    )
