"""Instance x solver matrix runner with budgets and JSON-able records.

The record types (:class:`RunRecord`, :class:`ExperimentRun`) and the
historical entry point :func:`run_instances` live here; since the batch
layer landed, ``run_instances`` is a thin compatibility shim over
:func:`repro.batch.run_batch` — pass ``jobs``/``cache_dir`` to fan a
campaign out over worker processes and skip already-solved cells.
"""

from __future__ import annotations

import json
from collections.abc import Callable, Sequence
from dataclasses import asdict, dataclass, field

from repro.generator.random_systems import Instance

__all__ = ["RunRecord", "ExperimentRun", "run_instances", "estimate_csp1_variables"]


@dataclass(frozen=True)
class RunRecord:
    """One (instance, solver) outcome — the unit all tables aggregate.

    ``decided_by`` carries the verdict's provenance (which screening test
    or engine actually answered — e.g. ``"necessary:utilization"`` for a
    cell pruned by the cascade, a member name for a portfolio win); it is
    ``None`` for cells that never ran and for journals written before the
    field existed.

    ``status`` is normally one of ``feasible`` / ``infeasible`` /
    ``unknown`` / ``skipped-memory``; a cell whose execution died and
    exhausted its retries carries a ``fault:*`` status instead (crash,
    oom, timeout, error) with the classified
    :class:`~repro.batch.supervise.FaultRecord` dict in ``fault``.
    """

    instance_seed: int | None
    n: int
    m: int
    hyperperiod: int
    utilization_ratio: float
    solver: str
    status: str  # feasible | infeasible | unknown | skipped-memory | fault:*
    elapsed: float
    nodes: int
    decided_by: str | None = None
    fault: dict | None = None

    @property
    def overrun(self) -> bool:
        """The paper's overrun: budget exhausted without an answer.

        ``skipped-memory`` counts as an overrun too — the paper reports
        CSP1 "runs out of memory on large instances" in the same breath —
        and so does any ``fault:*`` outcome: a crashed cell consumed its
        budget without producing an answer.
        """
        return (
            self.status in ("unknown", "skipped-memory")
            or self.status.startswith("fault:")
        )

    @property
    def solved(self) -> bool:
        """A feasible schedule was produced within the budget."""
        return self.status == "feasible"


@dataclass
class ExperimentRun:
    """All records of one experiment, plus its configuration snapshot."""

    description: str
    time_limit: float
    records: list[RunRecord] = field(default_factory=list)

    # -- aggregation helpers used by the table modules ----------------------
    def by_instance(self) -> dict[int, list[RunRecord]]:
        """Group records by generator seed, preserving solver order."""
        out: dict[int, list[RunRecord]] = {}
        for r in self.records:
            out.setdefault(r.instance_seed, []).append(r)
        return out

    def solvers(self) -> list[str]:
        """Solver names in first-appearance order."""
        seen: list[str] = []
        for r in self.records:
            if r.solver not in seen:
                seen.append(r.solver)
        return seen

    # -- persistence ----------------------------------------------------------
    def to_json(self) -> str:
        """Serialize the run (config snapshot + records) as pretty JSON."""
        return json.dumps(
            {
                "description": self.description,
                "time_limit": self.time_limit,
                "records": [asdict(r) for r in self.records],
            },
            indent=2,
        )

    @classmethod
    def from_json(cls, text: str) -> "ExperimentRun":
        """Inverse of :meth:`to_json`."""
        data = json.loads(text)
        return cls(
            description=data["description"],
            time_limit=data["time_limit"],
            records=[RunRecord(**r) for r in data["records"]],
        )


def estimate_csp1_variables(instance: Instance) -> int:
    """Predicted CSP1 model size ``sum_i m * (T/T_i) * D_i`` — used to skip
    builds that would exhaust memory (the paper: CSP1 "runs out of memory
    on 'large' instances", Table IV).

    Thin wrapper over
    :func:`repro.solvers.problem.estimate_generic_variables`, which the
    shared solving engine applies whenever a
    :class:`~repro.solvers.problem.Problem` carries a ``variable_limit``.
    """
    from repro.model.platform import Platform
    from repro.solvers.problem import estimate_generic_variables

    return estimate_generic_variables(
        instance.system, Platform.identical(instance.m)
    )


def run_instances(
    instances: Sequence[Instance],
    solvers: Sequence[str],
    time_limit: float,
    description: str = "",
    seed: int | None = None,
    csp1_variable_limit: int = 2_000_000,
    progress: Callable[[int, int], None] | None = None,
    jobs: int = 1,
    cache_dir: str | None = None,
) -> ExperimentRun:
    """Run every solver on every instance under a per-run wall budget.

    Model/encoding construction counts against the budget (the paper's
    "resolution time" starts when the solver is handed the problem).
    ``csp1_variable_limit`` guards generic-engine encodings against
    instances whose model would not fit in memory; those runs are recorded
    as ``skipped-memory``.

    This is a compatibility shim over :func:`repro.batch.run_batch`:
    ``jobs`` fans the (instance, solver) matrix out over that many worker
    processes, and ``cache_dir`` points at a content-addressed result
    cache so previously solved cells are served without recomputation.
    Records always come back in instance-major, solver-minor order, the
    order the serial runner has always produced.
    """
    from repro.batch import cells_for_matrix, run_batch

    cells = cells_for_matrix(
        instances, solvers, time_limit,
        csp1_variable_limit=csp1_variable_limit, seed=seed,
    )
    report = run_batch(cells, jobs=jobs, cache=cache_dir, progress=progress)
    return ExperimentRun(
        description=description, time_limit=time_limit, records=report.records
    )
