"""Instance x solver matrix runner with budgets and JSON-able records."""

from __future__ import annotations

import json
import time
from collections.abc import Callable, Sequence
from dataclasses import asdict, dataclass, field

from repro.generator.random_systems import Instance
from repro.model.platform import Platform
from repro.solvers.base import Feasibility
from repro.solvers.registry import make_solver

__all__ = ["RunRecord", "ExperimentRun", "run_instances", "estimate_csp1_variables"]


@dataclass(frozen=True)
class RunRecord:
    """One (instance, solver) outcome — the unit all tables aggregate."""

    instance_seed: int | None
    n: int
    m: int
    hyperperiod: int
    utilization_ratio: float
    solver: str
    status: str  # feasible | infeasible | unknown | skipped-memory
    elapsed: float
    nodes: int

    @property
    def overrun(self) -> bool:
        """The paper's overrun: budget exhausted without an answer.

        ``skipped-memory`` counts as an overrun too — the paper reports
        CSP1 "runs out of memory on large instances" in the same breath.
        """
        return self.status in ("unknown", "skipped-memory")

    @property
    def solved(self) -> bool:
        """A feasible schedule was produced within the budget."""
        return self.status == "feasible"


@dataclass
class ExperimentRun:
    """All records of one experiment, plus its configuration snapshot."""

    description: str
    time_limit: float
    records: list[RunRecord] = field(default_factory=list)

    # -- aggregation helpers used by the table modules ----------------------
    def by_instance(self) -> dict[int, list[RunRecord]]:
        out: dict[int, list[RunRecord]] = {}
        for r in self.records:
            out.setdefault(r.instance_seed, []).append(r)
        return out

    def solvers(self) -> list[str]:
        seen: list[str] = []
        for r in self.records:
            if r.solver not in seen:
                seen.append(r.solver)
        return seen

    # -- persistence ----------------------------------------------------------
    def to_json(self) -> str:
        return json.dumps(
            {
                "description": self.description,
                "time_limit": self.time_limit,
                "records": [asdict(r) for r in self.records],
            },
            indent=2,
        )

    @classmethod
    def from_json(cls, text: str) -> "ExperimentRun":
        data = json.loads(text)
        return cls(
            description=data["description"],
            time_limit=data["time_limit"],
            records=[RunRecord(**r) for r in data["records"]],
        )


def estimate_csp1_variables(instance: Instance) -> int:
    """Predicted CSP1 model size ``sum_i m * (T/T_i) * D_i`` — used to skip
    builds that would exhaust memory (the paper: CSP1 "runs out of memory
    on 'large' instances", Table IV)."""
    s = instance.system
    return sum(
        instance.m * s.n_jobs(i) * s[i].deadline for i in range(s.n)
    )


def run_instances(
    instances: Sequence[Instance],
    solvers: Sequence[str],
    time_limit: float,
    description: str = "",
    seed: int | None = None,
    csp1_variable_limit: int = 2_000_000,
    progress: Callable[[int, int], None] | None = None,
) -> ExperimentRun:
    """Run every solver on every instance under a per-run wall budget.

    Model/encoding construction counts against the budget (the paper's
    "resolution time" starts when the solver is handed the problem).
    ``csp1_variable_limit`` guards generic-engine encodings against
    instances whose model would not fit in memory; those runs are recorded
    as ``skipped-memory``.
    """
    run = ExperimentRun(description=description, time_limit=time_limit)
    total = len(instances) * len(solvers)
    done = 0
    for inst in instances:
        platform = Platform.identical(inst.m)
        for name in solvers:
            done += 1
            if progress is not None:
                progress(done, total)
            base = dict(
                instance_seed=inst.seed,
                n=inst.system.n,
                m=inst.m,
                hyperperiod=inst.system.hyperperiod,
                utilization_ratio=float(inst.utilization_ratio),
                solver=name,
            )
            if name.startswith(("csp1", "csp2-generic", "sat")):
                if estimate_csp1_variables(inst) > csp1_variable_limit:
                    run.records.append(
                        RunRecord(
                            **base, status="skipped-memory",
                            elapsed=time_limit, nodes=0,
                        )
                    )
                    continue
            t0 = time.monotonic()
            solver = make_solver(name, inst.system, platform, seed=seed)
            build = time.monotonic() - t0
            remaining = max(0.0, time_limit - build)
            result = solver.solve(time_limit=remaining)
            elapsed = min(build + result.stats.elapsed, time_limit)
            status = result.status.value
            if result.status is Feasibility.UNKNOWN:
                elapsed = time_limit  # an overrun consumed the full budget
            run.records.append(
                RunRecord(
                    **base, status=status, elapsed=elapsed,
                    nodes=result.stats.nodes,
                )
            )
    return run
