"""The paper's reported numbers (Tables I-IV), for side-by-side reports.

These are transcription of Cucu-Grosjean & Buffet's published results —
the reproduction never reads them as inputs, only prints them next to
measured values in EXPERIMENTS.md and the CLI reports.
"""

from __future__ import annotations

__all__ = [
    "PAPER_TABLE1",
    "PAPER_TABLE2",
    "PAPER_TABLE3",
    "PAPER_TABLE4",
    "PAPER_SOLVER_LABELS",
]

#: registry name -> the paper's column label
PAPER_SOLVER_LABELS = {
    "csp1": "CSP1",
    "csp2": "CSP2",
    "csp2+rm": "+RM",
    "csp2+dm": "+DM",
    "csp2+tc": "+(T-C)",
    "csp2+dc": "+(D-C)",
}

#: Table I — overrun counts on 500 instances (m=5, n=10, Tmax=7, 30 s)
PAPER_TABLE1 = {
    "solved": {
        "csp1": 202, "csp2": 133, "csp2+rm": 115, "csp2+dm": 111,
        "csp2+tc": 34, "csp2+dc": 12, "total": 295,
    },
    "unsolved": {
        "csp1": 205, "csp2": 189, "csp2+rm": 189, "csp2+dm": 189,
        "csp2+tc": 189, "csp2+dc": 189, "total": 205,
    },
}

#: Table II — unsolved overruns split by the r > 1 filter
PAPER_TABLE2 = {
    "filtered": {
        "csp1": 183, "csp2": 170, "csp2+rm": 170, "csp2+dm": 170,
        "csp2+tc": 170, "csp2+dc": 170, "total": 183,
    },
    "unfiltered": {
        "csp1": 22, "csp2": 19, "csp2+rm": 19, "csp2+dm": 19,
        "csp2+tc": 19, "csp2+dc": 19, "total": 22,
    },
    "provably_unsolvable_unfiltered": 3,
}

#: Table III — (r_min, r_max, #instances, mean resolution time [s])
PAPER_TABLE3 = [
    (0.0, 0.4, 0, None),
    (0.4, 0.5, 2, 5.0),
    (0.5, 0.6, 4, 2.1),
    (0.6, 0.7, 29, 6.5),
    (0.7, 0.8, 79, 7.7),
    (0.8, 0.9, 98, 10.7),
    (0.9, 1.0, 105, 18.7),
    (1.0, 1.1, 87, 28.5),
    (1.1, 1.2, 51, 29.1),
    (1.2, 1.3, 35, 28.1),
    (1.3, 1.4, 7, 30.0),
    (1.4, 1.5, 1, 30.0),
    (1.5, 1.6, 1, 30.0),
    (1.6, 1.7, 1, 30.0),
    (1.7, 2.0, 0, None),
]

#: Table IV — growing n (Tmax=15, m=ceil(U), 100 instances per n).
#: Columns: n -> (avg r, avg m, avg T/1000, CSP1 solved%, CSP1 tres,
#:                CSP2+(D-C) solved%, CSP2+(D-C) tres); None = not run.
PAPER_TABLE4 = {
    4: (0.74, 2.15, 2.60, 0.29, 19.52, 0.81, 0.01),
    8: (0.84, 3.56, 2.79, 0.01, 29.58, 0.66, 0.05),
    16: (0.93, 6.87, 111.21, 0.00, 30.00, 0.10, 0.02),
    32: (0.96, 13.02, 285.29, None, None, 0.00, 0.00),
    64: (0.98, 25.82, 345.95, None, None, 0.00, 0.00),
    128: (0.99, 51.07, 360.36, None, None, 0.00, 0.00),
    256: (0.99, 101.28, 360.36, None, None, 0.00, 0.00),
}
