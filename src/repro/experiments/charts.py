"""Tiny ASCII charting for experiment reports (no plotting dependency).

The paper presents Table III as a table; the underlying story is a curve
(resolution time vs utilization ratio).  :func:`bar_chart` renders such
series as horizontal bars so the CLI and EXPERIMENTS.md can show the trend
at a glance.
"""

from __future__ import annotations

from collections.abc import Sequence

__all__ = ["bar_chart", "table3_chart"]


def bar_chart(
    labels: Sequence[str],
    values: Sequence[float | None],
    width: int = 40,
    unit: str = "",
    fill: str = "#",
) -> str:
    """Horizontal bar chart; None values render as absent rows.

    >>> print(bar_chart(["a", "b"], [1.0, 2.0], width=4))
    a  ##    1
    b  ####  2
    """
    if len(labels) != len(values):
        raise ValueError("labels and values must have equal length")
    if width < 1:
        raise ValueError(f"width must be >= 1, got {width}")
    if len(fill) != 1:
        raise ValueError("fill must be a single character")
    present = [v for v in values if v is not None]
    if not present:
        return "(no data)"
    vmax = max(present) or 1.0
    label_w = max(len(l) for l in labels)
    lines = []
    for label, v in zip(labels, values):
        if v is None:
            lines.append(f"{label.ljust(label_w)}  {'-':>{width}}")
            continue
        n = round(v / vmax * width)
        n = max(n, 1) if v > 0 else 0
        num = f"{v:g}{unit}"
        lines.append(f"{label.ljust(label_w)}  {(fill * n).ljust(width)}  {num}")
    return "\n".join(lines)


def table3_chart(result, width: int = 40) -> str:
    """Render a Table III result's time-vs-r curve as a bar chart."""
    bins = result.nonempty_bins()
    labels = [f"r {lo:.1f}-{hi:.1f} (n={count})" for lo, hi, count, _ in bins]
    values = [mean_t for _, _, _, mean_t in bins]
    header = "mean resolution time by utilization ratio"
    return header + "\n" + bar_chart(labels, values, width=width, unit="s")
