"""Table III: where the difficult problems are.

Reuses Table I's records: instances are binned by utilization ratio ``r``
(the paper's bins — one wide 0.0-0.4 bin, then width 0.1 up to 1.7, then
1.7-2.0) and the mean resolution time *over all solvers* is reported per
bin.  The expected shape: time grows with ``r`` and saturates at the
budget just past ``r = 1``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experiments.runner import ExperimentRun
from repro.experiments.table1 import Table1Config, Table1Result, run_table1

__all__ = ["Table3Result", "run_table3", "PAPER_BINS"]

#: the paper's (r_min, r_max] bins
PAPER_BINS: list[tuple[float, float]] = (
    [(0.0, 0.4)]
    + [(round(0.4 + k * 0.1, 1), round(0.5 + k * 0.1, 1)) for k in range(13)]
    + [(1.7, 2.0)]
)


@dataclass
class Table3Result:
    """Instance counts and mean resolution time per utilization-ratio bin."""

    config: Table1Config
    run: ExperimentRun
    #: (r_min, r_max, #instances, mean time or None)
    bins: list[tuple[float, float, int, float | None]] = field(default_factory=list)

    def nonempty_bins(self) -> list[tuple[float, float, int, float | None]]:
        """The bins at least one instance landed in (what the report shows)."""
        return [b for b in self.bins if b[2] > 0]


def run_table3(
    config: Table1Config | None = None,
    table1: Table1Result | None = None,
    progress=None,
) -> Table3Result:
    """Aggregate Table III (running Table I first if needed)."""
    if table1 is None:
        table1 = run_table1(config, progress=progress)
    run = table1.run

    bins: list[tuple[float, float, int, float | None]] = []
    by_instance = run.by_instance()
    for lo, hi in PAPER_BINS:
        times: list[float] = []
        count = 0
        for records in by_instance.values():
            r = records[0].utilization_ratio
            if lo < r <= hi or (lo == 0.0 and r == 0.0):
                count += 1
                times.extend(rec.elapsed for rec in records)
        mean = sum(times) / len(times) if times else None
        bins.append((lo, hi, count, mean))
    return Table3Result(config=table1.config, run=run, bins=bins)
