"""Table IV: increasing the number of tasks.

Paper protocol (Section VII-E): Tmax=15, n in {4, 8, 16, 32, 64, 128,
256}; per instance ``m = m_min = ceil(sum C_i/T_i)`` (so no instance is
prunable by the utilization filter); 100 instances per n; run CSP1 and
CSP2+(D-C).  Reported per n: average utilization ratio, average m, average
hyperperiod, and per solver the solved fraction and mean resolution time.

CSP1 "suffers from many overruns and runs out of memory on large
instances" — the runner's variable-count guard records those as overruns
(``skipped-memory``); beyond ``csp1_max_n`` CSP1 is not attempted at all,
matching the paper's dashes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from statistics import mean

from repro.experiments.runner import ExperimentRun, run_instances
from repro.generator.random_systems import GeneratorConfig, generate_instances

__all__ = ["Table4Config", "Table4Result", "Table4Row", "run_table4"]


@dataclass(frozen=True)
class Table4Config:
    """Defaults scaled down from the paper; ``paper_scale()`` restores it."""

    task_counts: tuple[int, ...] = (4, 8, 16, 32)
    instances_per_n: int = 15
    tmax: int = 15
    time_limit: float = 1.0
    csp1_max_n: int = 16
    seed: int = 2009
    solvers: tuple[str, ...] = ("csp1", "csp2+dc")

    @classmethod
    def paper_scale(cls) -> "Table4Config":
        """The published protocol: n up to 256, 100 instances per n."""
        return cls(
            task_counts=(4, 8, 16, 32, 64, 128, 256),
            instances_per_n=100,
            time_limit=30.0,
        )


@dataclass
class Table4Row:
    """One n row of Table IV."""

    n: int
    avg_r: float
    avg_m: float
    avg_hyperperiod: float
    #: solver -> (solved fraction, mean resolution time); None if not run
    per_solver: dict[str, tuple[float, float] | None]


@dataclass
class Table4Result:
    """All rows of Table IV plus the per-n runs they aggregate."""

    config: Table4Config
    rows: list[Table4Row] = field(default_factory=list)
    runs: dict[int, ExperimentRun] = field(default_factory=dict)


def run_table4(
    config: Table4Config | None = None,
    progress=None,
    jobs: int = 1,
    cache_dir: str | None = None,
) -> Table4Result:
    """Run the scaling experiment.

    ``jobs``/``cache_dir`` are forwarded to the batch layer for each n's
    instance x solver matrix.
    """
    config = config or Table4Config()
    result = Table4Result(config=config)
    for n in config.task_counts:
        gen = GeneratorConfig(n=n, tmax=config.tmax, m="min")
        instances = generate_instances(gen, config.instances_per_n, seed=config.seed + n)
        solvers = [
            s for s in config.solvers
            if not (s.startswith("csp1") and n > config.csp1_max_n)
        ]
        run = run_instances(
            instances,
            solvers,
            time_limit=config.time_limit,
            description=f"table4: n={n} Tmax={config.tmax} m=min",
            progress=progress,
            jobs=jobs,
            cache_dir=cache_dir,
        )
        result.runs[n] = run

        per_solver: dict[str, tuple[float, float] | None] = {}
        for s in config.solvers:
            recs = [r for r in run.records if r.solver == s]
            if not recs:
                per_solver[s] = None
                continue
            solved = sum(1 for r in recs if r.solved) / len(recs)
            tres = mean(r.elapsed for r in recs)
            per_solver[s] = (solved, tres)
        result.rows.append(
            Table4Row(
                n=n,
                avg_r=mean(float(i.utilization_ratio) for i in instances),
                avg_m=mean(i.m for i in instances),
                avg_hyperperiod=mean(i.system.hyperperiod for i in instances),
                per_solver=per_solver,
            )
        )
    return result
