"""Plain-text rendering of the reproduced tables, paper numbers alongside."""

from __future__ import annotations

from repro.experiments.paperdata import (
    PAPER_SOLVER_LABELS,
    PAPER_TABLE1,
    PAPER_TABLE2,
    PAPER_TABLE3,
    PAPER_TABLE4,
)
from repro.experiments.table1 import Table1Result
from repro.experiments.table2 import Table2Result
from repro.experiments.table3 import Table3Result
from repro.experiments.table4 import Table4Result

__all__ = [
    "format_table1",
    "format_table2",
    "format_table3",
    "format_table4",
]


def _grid(headers: list[str], rows: list[list[str]], title: str) -> str:
    widths = [len(h) for h in headers]
    for row in rows:
        for k, cell in enumerate(row):
            widths[k] = max(widths[k], len(cell))
    lines = [title]
    lines.append("  ".join(h.rjust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _solver_label(name: str) -> str:
    return PAPER_SOLVER_LABELS.get(name, name)


def format_table1(result: Table1Result, with_paper: bool = True) -> str:
    """Render Table I as aligned text, optionally with the paper's rows."""
    solvers = list(result.config.solvers)
    headers = ["# overruns"] + [_solver_label(s) for s in solvers] + ["Total"]
    rows = []
    for label, counts, total in result.rows():
        rows.append([label] + [str(c) for c in counts] + [str(total)])
        if with_paper and label in PAPER_TABLE1:
            paper = PAPER_TABLE1[label]
            rows.append(
                [f"  (paper, 500x30s)"]
                + [str(paper.get(s, "-")) for s in solvers]
                + [str(paper["total"])]
            )
    title = (
        f"Table I - runs hitting the {result.run.time_limit:g}s limit "
        f"({result.config.n_instances} instances, m={result.config.m}, "
        f"n={result.config.n}, Tmax={result.config.tmax})"
    )
    return _grid(headers, rows, title)


def format_table2(result: Table2Result, with_paper: bool = True) -> str:
    """Render Table II plus the provably-unsolvable footer line."""
    solvers = list(result.config.solvers)
    headers = ["# overruns"] + [_solver_label(s) for s in solvers] + ["Total"]
    rows = []
    for label, counts, total in result.rows():
        rows.append([label] + [str(c) for c in counts] + [str(total)])
        if with_paper and label in PAPER_TABLE2:
            paper = PAPER_TABLE2[label]
            rows.append(
                ["  (paper, 500x30s)"]
                + [str(paper.get(s, "-")) for s in solvers]
                + [str(paper["total"])]
            )
    title = "Table II - unsolved runs hitting the limit, split by the r>1 filter"
    body = _grid(headers, rows, title)
    extra = (
        f"\nprovably unsolvable among unfiltered unsolved: "
        f"{result.provably_unsolvable_unfiltered}"
    )
    if with_paper:
        extra += f" (paper: {PAPER_TABLE2['provably_unsolvable_unfiltered']})"
    return body + extra


def format_table3(result: Table3Result, with_paper: bool = True) -> str:
    """Render Table III (non-empty utilization-ratio bins only)."""
    headers = ["rmin-rmax", "#instances", "tres [s]"]
    if with_paper:
        headers += ["paper #", "paper tres"]
    paper_by_bin = {(lo, hi): (cnt, t) for lo, hi, cnt, t in PAPER_TABLE3}
    rows = []
    for lo, hi, count, mean_t in result.bins:
        row = [
            f"{lo:.1f}-{hi:.1f}",
            str(count),
            "-" if mean_t is None else f"{mean_t:.2f}",
        ]
        if with_paper:
            pc, pt = paper_by_bin.get((lo, hi), ("-", None))
            row += [str(pc), "-" if pt is None else f"{pt:.1f}"]
        rows.append(row)
    title = (
        "Table III - instance distribution and mean resolution time by "
        "utilization ratio"
    )
    return _grid(headers, rows, title)


def format_table4(result: Table4Result, with_paper: bool = True) -> str:
    """Render Table IV (one row per task count n)."""
    solvers = list(result.config.solvers)
    headers = ["n", "r", "m", "T(1000)"]
    for s in solvers:
        headers += [f"{_solver_label(s)} solved", f"{_solver_label(s)} tres"]
    rows = []
    for row in result.rows:
        cells = [
            str(row.n),
            f"{row.avg_r:.2f}",
            f"{row.avg_m:.2f}",
            f"{row.avg_hyperperiod / 1000:.2f}",
        ]
        for s in solvers:
            entry = row.per_solver.get(s)
            if entry is None:
                cells += ["-", "-"]
            else:
                solved, tres = entry
                cells += [f"{solved:.0%}", f"{tres:.2f}"]
        rows.append(cells)
        if with_paper and row.n in PAPER_TABLE4:
            pr, pm, pt, c1s, c1t, c2s, c2t = PAPER_TABLE4[row.n]
            paper_cells = ["  (paper)", f"{pr:.2f}", f"{pm:.2f}", f"{pt:.2f}"]
            for s in solvers:
                if s.startswith("csp1"):
                    vals = (c1s, c1t)
                elif s.startswith("csp2"):
                    vals = (c2s, c2t)
                else:
                    vals = (None, None)
                paper_cells += [
                    "-" if vals[0] is None else f"{vals[0]:.0%}",
                    "-" if vals[1] is None else f"{vals[1]:.2f}",
                ]
            rows.append(paper_cells)
    title = (
        f"Table IV - growing task count (Tmax={result.config.tmax}, m=ceil(U), "
        f"{result.config.instances_per_n} instances per n, "
        f"{result.config.time_limit:g}s budget)"
    )
    return _grid(headers, rows, title)
