"""Reproduction harness for the paper's experiments (Section VII).

One module per table/figure, all sharing :mod:`repro.experiments.runner`:

* :mod:`repro.experiments.figure1` — availability-interval chart of the
  running example;
* :mod:`repro.experiments.table1`  — overrun counts per solver, solved vs
  unsolved instances (500 problems, m=5, n=10, Tmax=7);
* :mod:`repro.experiments.table2`  — unsolved instances split by the
  ``r > 1`` utilization filter;
* :mod:`repro.experiments.table3`  — instance distribution and mean
  resolution time per utilization-ratio bin;
* :mod:`repro.experiments.table4`  — scaling n with m = ceil(U), Tmax=15.

Budgets are scaled down by default (pure Python vs the paper's 2009 C++/
Java; see docs/ARCHITECTURE.md) — ``paper_scale=True`` or the CLI's
``--paper`` restores the original 500 instances x 30 s.

Execution is delegated to :mod:`repro.batch`: every table runner accepts
``jobs=`` (worker processes) and ``cache_dir=`` (content-addressed result
cache), and the ``repro batch`` CLI runs ad-hoc campaigns with streaming
JSONL output and crash-safe resume.
"""

from repro.experiments.runner import (
    ExperimentRun,
    RunRecord,
    estimate_csp1_variables,
    run_instances,
)
from repro.experiments.figure1 import figure1
from repro.experiments.table1 import Table1Config, Table1Result, run_table1
from repro.experiments.table2 import Table2Result, run_table2
from repro.experiments.table3 import Table3Result, run_table3
from repro.experiments.table4 import Table4Config, Table4Result, run_table4

__all__ = [
    "ExperimentRun",
    "RunRecord",
    "estimate_csp1_variables",
    "run_instances",
    "figure1",
    "Table1Config",
    "Table1Result",
    "run_table1",
    "Table2Result",
    "run_table2",
    "Table3Result",
    "run_table3",
    "Table4Config",
    "Table4Result",
    "run_table4",
]
