"""CSP propagation-engine benchmark: the tracked perf baseline.

Runs a fixed, fully deterministic scenario grid — CSP1, CSP2, CSP2+dc and
sat — over pinned-seed generated instances plus the paper's running
example, and emits a machine-readable ``BENCH_engine.json`` with
wall-time, nodes/s, propagations/s and the share of wall-time spent
inside propagator code.  Two snapshots are checked in next to this file:

* ``BENCH_engine.before.json`` — the stateless-rescan engine (pre
  incremental-propagation refactor);
* ``BENCH_engine.after.json`` — the incremental event-driven engine.

Budgets are *node* limits, never time limits, so statuses and node
counts are machine-independent: any two runs of this grid must agree on
every status and every node count, only the wall-clock fields may move.
That is what makes the JSON diffable across PRs — a perf regression
shows up as a wall-time change against identical work.

Usage::

    python benchmarks/bench_engine.py --out BENCH_engine.json
    python benchmarks/bench_engine.py --smoke --out /tmp/smoke.json
    python benchmarks/bench_engine.py --check-schema BENCH_engine.json

``--smoke`` shrinks the grid to seconds of compute for CI
(``scripts/ci.sh`` runs it and then ``--check-schema`` so the baseline
file format cannot silently rot).
"""

from __future__ import annotations

import argparse
import json
import platform as py_platform
import sys
import time
from dataclasses import dataclass

from repro.generator import GeneratorConfig, generate_instance
from repro.generator.named import running_example, running_example_platform
from repro.model.platform import Platform
from repro.solvers.registry import create_solver

SCHEMA = "bench-engine/v1"

#: top-level keys every BENCH_engine.json must carry (CI schema guard)
REQUIRED_TOP_KEYS = ("schema", "scale", "engine", "python", "scenarios", "totals")
#: per-scenario keys (CI schema guard)
REQUIRED_SCENARIO_KEYS = (
    "name",
    "solver",
    "instances",
    "statuses",
    "wall_time_s",
    "nodes",
    "fails",
    "propagations",
    "nodes_per_s",
    "propagations_per_s",
    "propagator_share",
)


@dataclass(frozen=True)
class Scenario:
    """One grid cell: a solver name over a pinned instance family."""

    name: str
    solver: str
    #: (n, tmax, m, seed) tuples for the generator; None = running example
    specs: tuple[tuple[int, int, int, int] | None, ...]
    node_limit: int


def _grid(smoke: bool) -> list[Scenario]:
    """The fixed scenario grid (a much smaller one under ``--smoke``).

    Seeds are pinned; instances are drawn with ``d-first`` order (the
    paper's choice).  The mix deliberately contains FEASIBLE,
    INFEASIBLE and budget-limited cells so the engine is measured on
    solution finding, exhaustion proofs and deep search alike.
    """
    if smoke:
        specs = ((4, 4, 2, 11), (4, 4, 2, 12))
        return [
            Scenario("csp1", "csp1", (None,) + specs, node_limit=20_000),
            Scenario("csp2", "csp2-generic", (None,) + specs, node_limit=20_000),
            Scenario("csp2+dc", "csp2-generic+dc", (None,) + specs, node_limit=20_000),
            Scenario("sat", "sat", (None,) + specs, node_limit=20_000),
        ]
    # small/medium cells shared by every scenario; the paper's protocol
    # goes well past these (n up to 14, Tmax 15), so the CSP2 scenarios
    # additionally carry paper-scale cells with hyperperiods in the
    # hundreds — that is where constraint arities (and therefore the
    # propagation engine) actually get exercised
    base: tuple[tuple[int, int, int, int] | None, ...] = (
        None,  # the paper's running example (n=3, m=2, T=12)
        (4, 4, 2, 11),
        (4, 4, 2, 12),
        (4, 5, 2, 17),
        (5, 4, 2, 23),
        (5, 5, 2, 31),
        (5, 5, 3, 32),
        (6, 4, 2, 41),
        (6, 4, 3, 44),
        (6, 5, 3, 47),
    )
    large = ((8, 6, 3, 101), (8, 8, 3, 103), (10, 10, 4, 109))
    return [
        Scenario("csp1", "csp1", base + large[:1], node_limit=60_000),
        Scenario("csp2", "csp2-generic", base + large, node_limit=60_000),
        Scenario("csp2+dc", "csp2-generic+dc", base + large, node_limit=60_000),
        Scenario("sat", "sat", base + large[:1], node_limit=60_000),
    ]


def _instances(scenario: Scenario):
    """Materialize the pinned instances of one scenario."""
    out = []
    for spec in scenario.specs:
        if spec is None:
            out.append((running_example(), running_example_platform()))
        else:
            n, tmax, m, seed = spec
            inst = generate_instance(GeneratorConfig(n=n, tmax=tmax, m=m), seed)
            out.append((inst.system, Platform.identical(inst.m)))
    return out


class _PropagatorTimer:
    """Context manager: wrap every concrete propagator's hot methods so
    time spent inside propagator code can be reported as a share of the
    end-to-end wall time.  Instrumentation is only active during the
    second (share-measuring) pass, never during the timed pass."""

    #: methods that count as propagator work when present on a class
    METHODS = ("propagate", "on_event")

    def __init__(self) -> None:
        self.spent = 0.0
        self._patched: list[tuple[type, str, object]] = []

    def __enter__(self) -> "_PropagatorTimer":
        import repro.csp.propagators as props_mod

        seen: set[type] = set()
        for name in props_mod.__all__:
            cls = getattr(props_mod, name)
            if not isinstance(cls, type) or cls in seen:
                continue
            seen.add(cls)
            for meth in self.METHODS:
                fn = cls.__dict__.get(meth)
                if fn is None or not callable(fn):
                    continue
                self._patched.append((cls, meth, fn))
                setattr(cls, meth, self._wrap(fn))
        return self

    def _wrap(self, fn):
        timer = self

        def timed(*args, **kwargs):
            t0 = time.perf_counter()
            try:
                return fn(*args, **kwargs)
            finally:
                timer.spent += time.perf_counter() - t0

        return timed

    def __exit__(self, *exc) -> None:
        for cls, meth, fn in self._patched:
            setattr(cls, meth, fn)


def _run_scenario(scenario: Scenario, seed: int = 2009) -> dict:
    """Run one grid cell and return its JSON record."""
    instances = _instances(scenario)
    statuses: list[str] = []
    nodes = fails = propagations = 0

    # pass 1 — timed, uninstrumented; per instance the minimum of three
    # runs is recorded (the work is deterministic, so the min damps
    # scheduler noise without changing what is measured)
    wall = 0.0
    for system, plat in instances:
        best = None
        for _ in range(3):
            solver = create_solver(scenario.solver, system, plat, seed=seed)
            t0 = time.perf_counter()
            result = solver.solve(node_limit=scenario.node_limit)
            elapsed = time.perf_counter() - t0
            best = elapsed if best is None else min(best, elapsed)
        wall += best
        statuses.append(result.status.value)
        nodes += result.stats.nodes
        fails += result.stats.fails
        propagations += result.stats.propagations

    # pass 2 — instrumented, measures the propagator wall-time share
    with _PropagatorTimer() as timer:
        t0 = time.perf_counter()
        for system, plat in instances:
            solver = create_solver(scenario.solver, system, plat, seed=seed)
            solver.solve(node_limit=scenario.node_limit)
        instrumented_wall = time.perf_counter() - t0
    share = timer.spent / instrumented_wall if instrumented_wall > 0 else 0.0

    counts = {s: statuses.count(s) for s in ("feasible", "infeasible", "unknown")}
    return {
        "name": scenario.name,
        "solver": scenario.solver,
        "instances": len(instances),
        "node_limit": scenario.node_limit,
        "statuses": statuses,
        "status_counts": counts,
        "wall_time_s": round(wall, 4),
        "nodes": nodes,
        "fails": fails,
        "propagations": propagations,
        "nodes_per_s": round(nodes / wall) if wall > 0 else 0,
        "propagations_per_s": round(propagations / wall) if wall > 0 else 0,
        "propagator_share": round(share, 4),
    }


def run_grid(smoke: bool = False) -> dict:
    """Run the full grid and return the BENCH_engine document."""
    import repro.csp.search as search_mod

    scenarios = [_run_scenario(s) for s in _grid(smoke)]
    wall = sum(s["wall_time_s"] for s in scenarios)
    nodes = sum(s["nodes"] for s in scenarios)
    props = sum(s["propagations"] for s in scenarios)
    return {
        "schema": SCHEMA,
        "scale": "smoke" if smoke else "default",
        "engine": getattr(search_mod, "PROPAGATION_ENGINE", "stateless-rescan"),
        "python": py_platform.python_version(),
        "scenarios": scenarios,
        "totals": {
            "wall_time_s": round(wall, 4),
            "nodes": nodes,
            "propagations": props,
            "nodes_per_s": round(nodes / wall) if wall > 0 else 0,
            "propagations_per_s": round(props / wall) if wall > 0 else 0,
        },
    }


def check_schema(path: str) -> list[str]:
    """Validate a BENCH_engine.json document; return problems (empty = ok)."""
    problems: list[str] = []
    try:
        with open(path) as fh:
            doc = json.load(fh)
    except (OSError, ValueError) as exc:
        return [f"cannot read {path}: {exc}"]
    for key in REQUIRED_TOP_KEYS:
        if key not in doc:
            problems.append(f"missing top-level key {key!r}")
    if doc.get("schema") != SCHEMA:
        problems.append(f"schema is {doc.get('schema')!r}, expected {SCHEMA!r}")
    for i, sc in enumerate(doc.get("scenarios", [])):
        for key in REQUIRED_SCENARIO_KEYS:
            if key not in sc:
                problems.append(f"scenario {i} missing key {key!r}")
    if not doc.get("scenarios"):
        problems.append("no scenarios recorded")
    return problems


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--out", default="BENCH_engine.json", help="output JSON path")
    ap.add_argument(
        "--smoke", action="store_true", help="tiny grid for CI (seconds, not minutes)"
    )
    ap.add_argument(
        "--check-schema",
        metavar="PATH",
        help="validate an existing JSON file instead of running the grid",
    )
    args = ap.parse_args(argv)

    if args.check_schema:
        problems = check_schema(args.check_schema)
        for p in problems:
            print(f"bench-engine schema: {p}", file=sys.stderr)
        if not problems:
            print(f"{args.check_schema}: schema ok ({SCHEMA})")
        return 1 if problems else 0

    doc = run_grid(smoke=args.smoke)
    with open(args.out, "w") as fh:
        json.dump(doc, fh, indent=1, sort_keys=False)
        fh.write("\n")
    for sc in doc["scenarios"]:
        print(
            f"{sc['name']:<8} {sc['wall_time_s']:>8.3f}s  "
            f"{sc['nodes']:>8} nodes  {sc['nodes_per_s']:>9} nodes/s  "
            f"{sc['propagations_per_s']:>10} props/s  "
            f"share={sc['propagator_share']:.0%}  {sc['status_counts']}"
        )
    print(f"total    {doc['totals']['wall_time_s']:>8.3f}s  -> {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
