"""Conflict-directed learning benchmark: the tracked learning baseline.

Runs a fixed, fully deterministic grid of **boundary-utilization,
UNSAT-heavy** cells — instances whose total utilization sits near the
processor count, exactly the region where the screening cascade
abstains and chronological search thrashes — once with the
chronological solvers (``--role before``) and once with their
conflict-directed ``+learn`` variants (``--role after``).  Two
snapshots are checked in next to this file:

* ``BENCH_learning.before.json`` — chronological engine (learning off);
* ``BENCH_learning.after.json`` — conflict-directed engine
  (``csp1+learn`` / ``csp2+learn``).

Budgets are *node* limits, so statuses and node counts are
machine-independent; only wall-clock fields move between machines.
``--compare BEFORE AFTER`` checks the learning acceptance criteria:

* **agreement** — zero SAT/UNSAT disagreements (a budget-limited
  ``unknown`` may be *decided* by the stronger engine, never flipped);
* **nodes** — the learning engine needs >= 1.3x fewer nodes in
  aggregate (the checked-in snapshots show far more);
* **wall time** — reported for information; CI only asserts the
  machine-independent counters.

Usage::

    python benchmarks/bench_learning.py --role before --out BENCH_learning.before.json
    python benchmarks/bench_learning.py --role after  --out BENCH_learning.after.json
    python benchmarks/bench_learning.py --smoke --role after --out /tmp/s.json
    python benchmarks/bench_learning.py --check-schema BENCH_learning.after.json
    python benchmarks/bench_learning.py --compare BENCH_learning.before.json BENCH_learning.after.json
    python benchmarks/bench_learning.py --trajectory BENCH_trajectory.json

``--trajectory`` consolidates the engine / analysis / learning
baselines (their checked-in JSONs) into one ``BENCH_trajectory.json``
so the perf trend across PRs lives in a single tracked file.
"""

from __future__ import annotations

import argparse
import json
import os
import platform as py_platform
import sys
import time
from dataclasses import dataclass

from repro.generator import GeneratorConfig, generate_instance
from repro.model.platform import Platform
from repro.solvers.registry import create_solver

SCHEMA = "bench-learning/v1"
TRAJECTORY_SCHEMA = "bench-trajectory/v1"

#: top-level keys every BENCH_learning.json must carry (CI schema guard)
REQUIRED_TOP_KEYS = ("schema", "scale", "role", "python", "scenarios", "totals")
#: per-scenario keys (CI schema guard)
REQUIRED_SCENARIO_KEYS = (
    "name",
    "solver",
    "instances",
    "statuses",
    "wall_time_s",
    "nodes",
    "fails",
    "conflicts",
    "learned",
    "backjumps",
    "nodes_per_s",
)

#: minimum aggregate before/after node ratio --compare enforces
MIN_NODE_RATIO = 1.3


@dataclass(frozen=True)
class Scenario:
    """One grid row: a before/after solver pair over pinned instances."""

    name: str
    before: str
    after: str
    #: (n, tmax, m, seed) generator tuples (d-first order, identical m)
    specs: tuple[tuple[int, int, int, int], ...]
    node_limit: int

    def solver(self, role: str) -> str:
        """The registry name this scenario runs under ``role``."""
        return self.before if role == "before" else self.after


def _grid(smoke: bool) -> list[Scenario]:
    """The fixed scenario grid (a tiny one under ``--smoke``).

    Seeds were picked by scanning the d-first generator for cells whose
    utilization sits within ~0.4 of the processor count and whose
    chronological proof needs thousands of nodes (or overruns) — the
    boundary region the ROADMAP's hard core lives in.  The mix is
    UNSAT-heavy on purpose: refutation is where nogood learning pays.
    """
    if smoke:
        return [
            Scenario(
                "csp2-boundary", "csp2-generic+dc", "csp2+learn",
                ((4, 4, 2, 16), (4, 4, 2, 27)), node_limit=20_000,
            ),
            Scenario(
                "csp1-boundary", "csp1", "csp1+learn",
                ((4, 4, 2, 16),), node_limit=20_000,
            ),
        ]
    return [
        Scenario(
            "csp2-boundary", "csp2-generic+dc", "csp2+learn",
            (
                (4, 4, 2, 16), (4, 4, 2, 27),
                (5, 4, 2, 9), (5, 4, 2, 18), (5, 4, 2, 40),
                (5, 5, 2, 9), (5, 5, 2, 11), (5, 5, 2, 51),
                (6, 5, 2, 26), (6, 5, 2, 58),
            ),
            node_limit=60_000,
        ),
        Scenario(
            "csp2-boundary-overrun", "csp2-generic+dc", "csp2+learn",
            # the chronological engine overruns these; learning decides
            ((5, 5, 2, 14), (6, 5, 2, 37), (6, 5, 3, 2), (6, 5, 3, 10),
             (6, 6, 3, 1), (6, 6, 3, 14)),
            node_limit=60_000,
        ),
        Scenario(
            "csp1-boundary", "csp1", "csp1+learn",
            ((4, 4, 2, 16), (4, 4, 2, 27), (4, 4, 2, 11), (5, 4, 2, 18),
             (5, 4, 2, 59)),
            node_limit=60_000,
        ),
    ]


def _instances(scenario: Scenario):
    """Materialize the pinned instances of one scenario."""
    out = []
    for n, tmax, m, seed in scenario.specs:
        inst = generate_instance(GeneratorConfig(n=n, tmax=tmax, m=m), seed)
        out.append((inst.system, Platform.identical(inst.m)))
    return out


def _run_scenario(scenario: Scenario, role: str) -> dict:
    """Run one grid row under ``role`` and return its JSON record."""
    solver_name = scenario.solver(role)
    instances = _instances(scenario)
    statuses: list[str] = []
    nodes = fails = conflicts = learned = forgotten = backjumps = 0
    wall = 0.0
    for system, plat in instances:
        best = None
        for _ in range(3):  # min-of-3: deterministic work, damped noise
            engine = create_solver(solver_name, system, plat)
            t0 = time.perf_counter()
            result = engine.solve(node_limit=scenario.node_limit)
            elapsed = time.perf_counter() - t0
            best = elapsed if best is None else min(best, elapsed)
        wall += best
        statuses.append(result.status.value)
        nodes += result.stats.nodes
        fails += result.stats.fails
        extra = result.stats.extra
        conflicts += extra.get("conflicts", 0)
        learned += extra.get("learned", 0)
        forgotten += extra.get("forgotten", 0)
        backjumps += extra.get("backjumps", 0)
    counts = {s: statuses.count(s) for s in ("feasible", "infeasible", "unknown")}
    return {
        "name": scenario.name,
        "solver": solver_name,
        "instances": len(instances),
        "node_limit": scenario.node_limit,
        "statuses": statuses,
        "status_counts": counts,
        "wall_time_s": round(wall, 4),
        "nodes": nodes,
        "fails": fails,
        "conflicts": conflicts,
        "learned": learned,
        "forgotten": forgotten,
        "backjumps": backjumps,
        "nodes_per_s": round(nodes / wall) if wall > 0 else 0,
    }


def run_grid(role: str, smoke: bool = False) -> dict:
    """Run the full grid under ``role`` and return the document."""
    scenarios = [_run_scenario(s, role) for s in _grid(smoke)]
    wall = sum(s["wall_time_s"] for s in scenarios)
    nodes = sum(s["nodes"] for s in scenarios)
    return {
        "schema": SCHEMA,
        "scale": "smoke" if smoke else "default",
        "role": role,
        "python": py_platform.python_version(),
        "scenarios": scenarios,
        "totals": {
            "wall_time_s": round(wall, 4),
            "nodes": nodes,
            "conflicts": sum(s["conflicts"] for s in scenarios),
            "learned": sum(s["learned"] for s in scenarios),
            "nodes_per_s": round(nodes / wall) if wall > 0 else 0,
        },
    }


def check_schema(path: str) -> list[str]:
    """Validate a BENCH_learning.json document; empty list = ok."""
    problems: list[str] = []
    try:
        with open(path) as fh:
            doc = json.load(fh)
    except (OSError, ValueError) as exc:
        return [f"cannot read {path}: {exc}"]
    for key in REQUIRED_TOP_KEYS:
        if key not in doc:
            problems.append(f"missing top-level key {key!r}")
    if doc.get("schema") != SCHEMA:
        problems.append(f"schema is {doc.get('schema')!r}, expected {SCHEMA!r}")
    if doc.get("role") not in ("before", "after"):
        problems.append(f"role is {doc.get('role')!r}, expected before/after")
    for i, sc in enumerate(doc.get("scenarios", [])):
        for key in REQUIRED_SCENARIO_KEYS:
            if key not in sc:
                problems.append(f"scenario {i} missing key {key!r}")
    if not doc.get("scenarios"):
        problems.append("no scenarios recorded")
    return problems


def compare(before_path: str, after_path: str) -> list[str]:
    """Check the learning acceptance criteria between two snapshots.

    Returns a list of problems (empty = pass): scenario mismatch, any
    SAT/UNSAT flip, or an aggregate node ratio under
    :data:`MIN_NODE_RATIO`.  Wall-clock is reported by the CLI but not
    judged here — node counts are the machine-independent signal.
    """
    problems: list[str] = []
    with open(before_path) as fh:
        before = json.load(fh)
    with open(after_path) as fh:
        after = json.load(fh)
    b_sc = {s["name"]: s for s in before.get("scenarios", [])}
    a_sc = {s["name"]: s for s in after.get("scenarios", [])}
    if set(b_sc) != set(a_sc):
        return [f"scenario sets differ: {sorted(set(b_sc) ^ set(a_sc))}"]
    for name, b in b_sc.items():
        a = a_sc[name]
        if b["instances"] != a["instances"]:
            problems.append(f"{name}: instance counts differ")
            continue
        for i, (sb, sa) in enumerate(zip(b["statuses"], a["statuses"])):
            if "unknown" in (sb, sa):
                continue  # a decided cell vs an overrun is an improvement
            if sb != sa:
                problems.append(
                    f"{name}[{i}]: SAT/UNSAT disagreement ({sb} vs {sa})"
                )
    b_nodes = sum(s["nodes"] for s in b_sc.values())
    a_nodes = sum(s["nodes"] for s in a_sc.values())
    ratio = b_nodes / a_nodes if a_nodes else float("inf")
    if ratio < MIN_NODE_RATIO:
        problems.append(
            f"node ratio {ratio:.2f}x below the {MIN_NODE_RATIO}x bar "
            f"({b_nodes} -> {a_nodes})"
        )
    return problems


def build_trajectory(bench_dir: str) -> dict:
    """Summarize the engine / analysis / learning baselines in one doc.

    Reads the checked-in snapshot JSONs next to this file and distills
    each into the handful of numbers the ROADMAP tracks across PRs.
    """
    def load(name):
        path = os.path.join(bench_dir, name)
        try:
            with open(path) as fh:
                return json.load(fh)
        except (OSError, ValueError):
            return None

    out = {"schema": TRAJECTORY_SCHEMA, "baselines": {}}
    eng_before = load("BENCH_engine.before.json")
    eng_after = load("BENCH_engine.after.json")
    if eng_before and eng_after:
        # the engine snapshots are re-captured each engine PR: "before"
        # is the predecessor commit's engine, "after" the current one
        # (PR 3 measured stateless-rescan -> incremental; PR 10 measures
        # scalar hot paths -> batched kernels + closure-bound fixpoint)
        b, a = eng_before["totals"], eng_after["totals"]
        out["baselines"]["engine"] = {
            "pr": 10,
            "what": "scalar hot paths -> batched counting kernel + "
            "closure-bound fixpoint (vectorised kernels)",
            "wall_time_s": {"before": b["wall_time_s"], "after": a["wall_time_s"]},
            "speedup": round(b["wall_time_s"] / a["wall_time_s"], 2)
            if a["wall_time_s"] else None,
            "nodes_identical": b["nodes"] == a["nodes"],
        }
    kernels = load("BENCH_kernels.json")
    if kernels:
        out["baselines"]["kernels"] = {
            "pr": 10,
            "what": "block-stepping simulator + prefix-sum demand table "
            "vs the scalar loops they replaced (parity asserted)",
            "speedups": {
                s["name"]: s["speedup"] for s in kernels.get("sections", [])
            },
        }
    analysis = load("BENCH_analysis.full.json")
    if analysis:
        out["baselines"]["analysis"] = {
            "pr": 4,
            "what": "polynomial screening cascade ahead of exact search",
            "decided_fraction": analysis.get("screen", {}).get("decided_fraction"),
            "screened_speedup": analysis.get("totals", {}).get("speedup"),
            "disagreements": analysis.get("agreement", {}).get("disagreements"),
        }
    lrn_before = load("BENCH_learning.before.json")
    lrn_after = load("BENCH_learning.after.json")
    if lrn_before and lrn_after:
        b, a = lrn_before["totals"], lrn_after["totals"]
        out["baselines"]["learning"] = {
            "pr": 5,
            "what": "chronological -> conflict-directed search (+learn)",
            "nodes": {"before": b["nodes"], "after": a["nodes"]},
            "node_ratio": round(b["nodes"] / a["nodes"], 2) if a["nodes"] else None,
            "wall_time_s": {"before": b["wall_time_s"], "after": a["wall_time_s"]},
            "wall_ratio": round(b["wall_time_s"] / a["wall_time_s"], 2)
            if a["wall_time_s"] else None,
            "nogoods_learned": a.get("learned"),
        }
    return out


def check_trajectory(path: str) -> list[str]:
    """Validate a BENCH_trajectory.json document; empty list = ok."""
    try:
        with open(path) as fh:
            doc = json.load(fh)
    except (OSError, ValueError) as exc:
        return [f"cannot read {path}: {exc}"]
    problems = []
    if doc.get("schema") != TRAJECTORY_SCHEMA:
        problems.append(
            f"schema is {doc.get('schema')!r}, expected {TRAJECTORY_SCHEMA!r}"
        )
    for key in ("engine", "analysis", "learning", "kernels"):
        if key not in doc.get("baselines", {}):
            problems.append(f"missing baseline {key!r}")
    return problems


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--out", default="BENCH_learning.json", help="output JSON path")
    ap.add_argument(
        "--role", choices=("before", "after"), default="after",
        help="run the chronological (before) or learning (after) solvers",
    )
    ap.add_argument(
        "--smoke", action="store_true", help="tiny grid for CI (seconds)"
    )
    ap.add_argument(
        "--check-schema", metavar="PATH",
        help="validate an existing JSON file instead of running the grid",
    )
    ap.add_argument(
        "--compare", nargs=2, metavar=("BEFORE", "AFTER"),
        help="check agreement + node-ratio acceptance between two snapshots",
    )
    ap.add_argument(
        "--trajectory", metavar="OUT",
        help="write the consolidated BENCH_trajectory.json and exit",
    )
    ap.add_argument(
        "--check-trajectory", metavar="PATH",
        help="validate an existing trajectory JSON and exit",
    )
    args = ap.parse_args(argv)
    bench_dir = os.path.dirname(os.path.abspath(__file__))

    if args.check_schema:
        problems = check_schema(args.check_schema)
        for p in problems:
            print(f"bench-learning schema: {p}", file=sys.stderr)
        if not problems:
            print(f"{args.check_schema}: schema ok ({SCHEMA})")
        return 1 if problems else 0

    if args.check_trajectory:
        problems = check_trajectory(args.check_trajectory)
        for p in problems:
            print(f"bench-trajectory: {p}", file=sys.stderr)
        if not problems:
            print(f"{args.check_trajectory}: trajectory ok")
        return 1 if problems else 0

    if args.compare:
        problems = compare(*args.compare)
        for p in problems:
            print(f"bench-learning compare: {p}", file=sys.stderr)
        if not problems:
            with open(args.compare[0]) as fh:
                b = json.load(fh)["totals"]
            with open(args.compare[1]) as fh:
                a = json.load(fh)["totals"]
            ratio = b["nodes"] / a["nodes"] if a["nodes"] else float("inf")
            wall = (
                b["wall_time_s"] / a["wall_time_s"]
                if a["wall_time_s"] else float("inf")
            )
            print(
                f"agreement ok; nodes {b['nodes']} -> {a['nodes']} "
                f"({ratio:.1f}x fewer), wall {b['wall_time_s']:.2f}s -> "
                f"{a['wall_time_s']:.2f}s ({wall:.1f}x)"
            )
        return 1 if problems else 0

    if args.trajectory:
        doc = build_trajectory(bench_dir)
        with open(args.trajectory, "w") as fh:
            json.dump(doc, fh, indent=1)
            fh.write("\n")
        print(f"wrote {args.trajectory}")
        return 0

    doc = run_grid(args.role, smoke=args.smoke)
    with open(args.out, "w") as fh:
        json.dump(doc, fh, indent=1)
        fh.write("\n")
    for sc in doc["scenarios"]:
        print(
            f"{sc['name']:<24} {sc['solver']:<18} {sc['wall_time_s']:>8.3f}s  "
            f"{sc['nodes']:>8} nodes  conflicts={sc['conflicts']:<6} "
            f"{sc['status_counts']}"
        )
    print(f"total ({doc['role']})  {doc['totals']['wall_time_s']:>8.3f}s  -> {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
