"""Table III: difficulty (mean resolution time) versus utilization ratio."""

from repro.experiments.report import format_table3
from repro.experiments.table3 import run_table3


def test_table3(benchmark, table1_result):
    result = benchmark(run_table3, table1=table1_result)
    print("\n" + format_table3(result))

    bins = result.bins
    # bins cover every instance exactly once
    assert sum(b[2] for b in bins) == table1_result.config.n_instances

    nonempty = result.nonempty_bins()
    if len(nonempty) >= 2:
        # paper shape: resolution time increases with r — check the trend
        # between the easy (r well below 1) and hard (r near/above 1) ends
        lo_bin = nonempty[0]
        hi_bin = max(nonempty, key=lambda b: b[3])
        assert hi_bin[3] >= lo_bin[3]
        # the hardest bins sit at r >= ~0.9 (paper: times saturate past 1.0)
        assert hi_bin[0] >= 0.8

    # distribution shape: instances concentrate around r ~ 0.8-1.2
    # (paper: "clearly centered around the 0.9-1.0 interval")
    center = sum(b[2] for b in bins if 0.7 <= b[0] <= 1.2)
    assert center >= table1_result.config.n_instances // 2
