"""Head-to-head solver benchmarks on fixed instances.

Times every solver family on the paper's running example and on one
feasible / one infeasible random instance, so regressions in any layer
(engine, encoding, dedicated search, SAT) show up as timing shifts.
"""

import pytest

from repro.generator import GeneratorConfig, generate_instance, running_example
from repro.model import Platform
from repro.solvers import Feasibility, create_solver

SOLVERS = [
    "csp1",
    "csp2",
    "csp2+rm",
    "csp2+dm",
    "csp2+tc",
    "csp2+dc",
    "csp2-generic+dc",
    "sat",
]


@pytest.mark.parametrize("name", SOLVERS)
def test_running_example(benchmark, name):
    system = running_example()
    platform = Platform.identical(2)

    def solve():
        return create_solver(name, system, platform).solve(time_limit=30)

    result = benchmark(solve)
    assert result.status is Feasibility.FEASIBLE
    benchmark.extra_info["nodes"] = result.stats.nodes


@pytest.mark.parametrize("name", ["csp1", "csp2+dc", "sat"])
def test_infeasible_proof(benchmark, name):
    """Proving infeasibility (exhausting the space) on a just-overloaded
    instance: 3 saturating tasks on 2 processors."""
    from repro.model import TaskSystem

    system = TaskSystem.from_tuples([(0, 2, 2, 2), (0, 2, 2, 2), (0, 1, 2, 2)])
    platform = Platform.identical(2)

    def solve():
        return create_solver(name, system, platform).solve(time_limit=30)

    result = benchmark(solve)
    assert result.status is Feasibility.INFEASIBLE


@pytest.mark.parametrize("name", ["csp2", "csp2+dc"])
def test_random_feasible_instance(benchmark, name):
    """A reproducible Section VII-A instance that is feasible."""
    inst = generate_instance(GeneratorConfig(n=8, m=4, tmax=6), seed=20090)
    platform = Platform.identical(inst.m)

    def solve():
        return create_solver(name, inst.system, platform).solve(time_limit=30)

    result = benchmark(solve)
    assert result.status is not Feasibility.UNKNOWN
