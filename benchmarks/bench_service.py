"""Solver-service throughput benchmark: cold solves vs warm memo serves.

Boots the daemon in-process (:class:`~repro.service.server.ServiceHandle`,
production configuration: one supervised child per solve) and pushes a
pinned seeded grid through a pipelined :class:`ServiceClient` at
``jobs`` in {1, 4}:

* **cold** — empty memo cache, every request executes on the transport;
  the headline number is problems/s through the full admission ->
  supervised child -> journal -> response path;
* **warm** — the same grid resubmitted against the now-populated cache;
  every response must be a cache hit (the run *fails* otherwise), so
  the number isolates the service's non-solving overhead.

Statuses must be identical across ``jobs`` values — concurrency is an
execution detail, never an answer change.

Usage::

    python benchmarks/bench_service.py --out BENCH_service.json
    python benchmarks/bench_service.py --smoke --out /tmp/smoke.json
    python benchmarks/bench_service.py --check-schema BENCH_service.json
"""

from __future__ import annotations

import argparse
import json
import platform as py_platform
import sys
import tempfile
import time
from collections import Counter
from pathlib import Path

from repro.generator import GeneratorConfig, generate_instances
from repro.service import ServiceClient, ServiceConfig, ServiceHandle
from repro.solvers.problem import Problem

SCHEMA = "bench-service/v1"
SOLVER = "csp2+dc"
JOBS = (1, 4)

REQUIRED_TOP_KEYS = ("schema", "scale", "python", "grid", "scenarios")
REQUIRED_SCENARIO_KEYS = ("jobs", "cold", "warm", "statuses")
REQUIRED_PASS_KEYS = ("wall_time_s", "problems_per_s", "cache_hits")


def _grid(smoke: bool) -> dict:
    """The pinned request grid (tiny problems stress per-request cost)."""
    if smoke:
        return {"count": 10, "n": 3, "tmax": 3, "seed": 2009,
                "time_limit": 2.0}
    return {"count": 40, "n": 4, "tmax": 4, "seed": 2009,
            "time_limit": 5.0}


def _problems(grid: dict) -> list[Problem]:
    instances = generate_instances(
        GeneratorConfig(n=grid["n"], m=2, tmax=grid["tmax"]),
        grid["count"], seed=grid["seed"],
    )
    return [
        Problem.of(
            inst.system, m=inst.m, time_limit=grid["time_limit"],
            label=f"seed:{inst.seed}",
        )
        for inst in instances
    ]


def _timed_pass(client: ServiceClient, problems: list[Problem]) -> dict:
    """One pipelined sweep of the grid -> summary dict."""
    hits = []
    t0 = time.monotonic()
    reports = client.solve_many(
        problems, SOLVER, on_response=lambda i, r, c: hits.append(c)
    )
    wall = time.monotonic() - t0
    return {
        "wall_time_s": round(wall, 3),
        "problems_per_s": round(len(problems) / wall, 2) if wall > 0 else None,
        "cache_hits": sum(hits),
        "statuses": dict(Counter(r.status_label for r in reports)),
    }


def _scenario(jobs: int, problems: list[Problem]) -> dict:
    """Cold + warm sweeps against one fresh daemon at this concurrency."""
    with tempfile.TemporaryDirectory() as tmp:
        config = ServiceConfig(
            jobs=jobs, cache_dir=str(Path(tmp) / "cache"), supervised=True,
        )
        with ServiceHandle(config) as handle:
            host, port = handle._addr
            with ServiceClient.connect(host, port) as client:
                cold = _timed_pass(client, problems)
                warm = _timed_pass(client, problems)
    statuses = cold.pop("statuses")
    warm_statuses = warm.pop("statuses")
    if warm_statuses != statuses:
        raise AssertionError(
            f"jobs={jobs}: warm statuses diverge from cold"
        )
    return {"jobs": jobs, "cold": cold, "warm": warm, "statuses": statuses}


def check_schema(path: str) -> list[str]:
    """Validate a BENCH_service.json document; return problems (empty = ok)."""
    problems: list[str] = []
    try:
        with open(path) as fh:
            doc = json.load(fh)
    except (OSError, ValueError) as exc:
        return [f"cannot read {path}: {exc}"]
    for key in REQUIRED_TOP_KEYS:
        if key not in doc:
            problems.append(f"missing top-level key {key!r}")
    if doc.get("schema") != SCHEMA:
        problems.append(f"schema is {doc.get('schema')!r}, expected {SCHEMA!r}")
    scenarios = doc.get("scenarios", [])
    if not scenarios:
        problems.append("no scenarios recorded")
    for i, sc in enumerate(scenarios):
        for key in REQUIRED_SCENARIO_KEYS:
            if key not in sc:
                problems.append(f"scenario {i} missing key {key!r}")
        for phase in ("cold", "warm"):
            for key in REQUIRED_PASS_KEYS:
                if key not in sc.get(phase, {}):
                    problems.append(f"scenario {i} {phase} missing {key!r}")
    return problems


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default="BENCH_service.json")
    parser.add_argument("--smoke", action="store_true",
                        help="tiny grid for CI latency")
    parser.add_argument("--check-schema", metavar="PATH",
                        help="validate an existing JSON file instead")
    args = parser.parse_args(argv)

    if args.check_schema:
        problems = check_schema(args.check_schema)
        for p in problems:
            print(f"bench-service schema: {p}", file=sys.stderr)
        if not problems:
            print(f"{args.check_schema}: schema ok ({SCHEMA})")
        return 1 if problems else 0

    grid = _grid(args.smoke)
    problems = _problems(grid)
    scenarios = [_scenario(jobs, problems) for jobs in JOBS]

    if any(sc["cold"]["cache_hits"] for sc in scenarios):
        print("FAIL: a cold pass was served from an empty cache")
        return 1
    if any(sc["warm"]["cache_hits"] != len(problems) for sc in scenarios):
        print("FAIL: a warm pass missed the memo cache")
        return 1
    if any(sc["statuses"] != scenarios[0]["statuses"] for sc in scenarios):
        print("FAIL: statuses diverge across jobs values")
        return 1

    doc = {
        "schema": SCHEMA,
        "scale": "smoke" if args.smoke else "full",
        "python": py_platform.python_version(),
        "grid": grid,
        "scenarios": scenarios,
    }
    with open(args.out, "w") as fh:
        json.dump(doc, fh, indent=2)
        fh.write("\n")
    for sc in scenarios:
        print(
            f"bench_service: jobs={sc['jobs']} cold "
            f"{sc['cold']['problems_per_s']}/s, warm "
            f"{sc['warm']['problems_per_s']}/s "
            f"({len(problems)} problems)"
        )
    print(f"-> {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
