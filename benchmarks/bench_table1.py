"""Table I: overruns per solver on random instances (m=5, n=10, Tmax=7).

The benchmark body is the full experiment (generation + the instance x
solver matrix).  Shape assertions encode the paper's qualitative findings;
absolute counts differ (scaled budget, pure-Python substrate), the
ordering must not.
"""

from repro.experiments.report import format_table1
from repro.experiments.table1 import Table1Config, run_table1

from conftest import CACHE_DIR, JOBS, table1_config


def test_table1(benchmark):
    result = benchmark.pedantic(
        run_table1, args=(table1_config(),),
        kwargs=dict(jobs=JOBS, cache_dir=CACHE_DIR), rounds=1, iterations=1,
    )
    print("\n" + format_table1(result))

    cfg = result.config
    solved = result.overruns["solved"]
    unsolved = result.overruns["unsolved"]

    # every instance lands in exactly one group
    assert result.n_solved_instances + result.n_unsolved_instances == cfg.n_instances

    # paper shape 1: CSP1 overruns at least as often as every dedicated
    # CSP2 variant, on both groups (Table I: 202 vs 133..12, 205 vs 189)
    for s in cfg.solvers:
        if s != "csp1":
            assert solved["csp1"] >= solved[s], (s, solved)
            assert unsolved["csp1"] >= unsolved[s], (s, unsolved)

    # paper shape 2: (D-C) is the best CSP2 ordering on solved instances
    # (12 overruns vs 34/111/115/133) — allow ties at small sample sizes
    assert solved["csp2+dc"] <= min(
        solved["csp2"], solved["csp2+rm"], solved["csp2+dm"], solved["csp2+tc"]
    )

    # paper shape 3: all CSP2 variants behave identically on unsolved
    # instances (189 across the board) — the value ordering cannot help
    # when there is nothing to find
    csp2_unsolved = {unsolved[s] for s in cfg.solvers if s.startswith("csp2")}
    assert len(csp2_unsolved) == 1, unsolved
