"""Table II: unsolved instances vs the r > 1 utilization filter.

Re-aggregates the shared Table I records (the timed body is the
aggregation, exactly the computation the paper's Table II adds on top of
Table I's runs).
"""

from repro.experiments.report import format_table2
from repro.experiments.table2 import run_table2


def test_table2(benchmark, table1_result):
    result = benchmark(run_table2, table1=table1_result)
    print("\n" + format_table2(result))

    # the split partitions the unsolved instances
    assert (
        result.n_filtered + result.n_unfiltered
        == table1_result.n_unsolved_instances
    )

    # paper shape: "a large proportion of unsolvable instances can be
    # easily detected" — the r>1 filter catches most unsolved instances
    # (183 of 205 in the paper)
    if result.n_filtered + result.n_unfiltered >= 4:
        assert result.n_filtered >= result.n_unfiltered

    # consistency with Table I: per-solver overruns add up across groups
    for s in result.config.solvers:
        assert (
            result.overruns["filtered"][s] + result.overruns["unfiltered"][s]
            == table1_result.overruns["unsolved"][s]
        )

    # provably-unsolvable counts only unfiltered instances
    assert 0 <= result.provably_unsolvable_unfiltered <= result.n_unfiltered
