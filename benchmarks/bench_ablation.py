"""Ablations of the design choices the paper calls out (Sections III-B, V-C).

Each benchmark solves the same fixed batch of random instances with one
search ingredient toggled:

* dedicated CSP2: symmetry breaking (rule 10), the idle rule, demand
  pruning, energetic pruning (this reproduction's extension);
* generic engine on CSP1: variable-ordering heuristics;
* SAT route: pairwise vs sequential at-most-one encodings.

Answers must never change (the flags are prunings/orderings, the tests in
tests/ already prove agreement); what the bench shows is the effort.
"""

import pytest

from repro.generator import GeneratorConfig, generate_instances
from repro.model import Platform
from repro.solvers import create_solver

TIME_LIMIT = 0.6


def _instances():
    return generate_instances(GeneratorConfig(n=6, m=3, tmax=5), 8, seed=11)


def _solve_batch(name: str, **options):
    decided = 0
    nodes = 0
    for inst in _instances():
        r = create_solver(name, inst.system, Platform.identical(inst.m), **options).solve(
            time_limit=TIME_LIMIT
        )
        nodes += r.stats.nodes
        if not r.timed_out:
            decided += 1
    return decided, nodes


DEDICATED_VARIANTS = {
    "default": {},
    "no-symmetry": {"symmetry_breaking": False},
    "no-idle-rule": {"idle_rule": False},
    "no-demand-pruning": {"demand_pruning": False},
    "with-energetic": {"energetic_pruning": True},
    "no-pruning-at-all": {
        "symmetry_breaking": False,
        "idle_rule": False,
        "demand_pruning": False,
    },
}


@pytest.mark.parametrize("variant", list(DEDICATED_VARIANTS))
def test_csp2_dedicated_ablation(benchmark, variant):
    decided, nodes = benchmark.pedantic(
        _solve_batch,
        args=("csp2+dc",),
        kwargs=DEDICATED_VARIANTS[variant],
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info["decided"] = decided
    benchmark.extra_info["nodes"] = nodes
    print(f"\ncsp2+dc [{variant}]: {decided}/8 decided, {nodes} nodes")
    # the fully-pruned default must decide everything in this small batch
    if variant == "default":
        assert decided == 8


@pytest.mark.parametrize("heuristic", ["min_dom", "dom_deg", "input"])
def test_csp1_variable_ordering_ablation(benchmark, heuristic):
    decided, nodes = benchmark.pedantic(
        _solve_batch, args=(f"csp1+{heuristic}",), rounds=1, iterations=1
    )
    benchmark.extra_info["decided"] = decided
    benchmark.extra_info["nodes"] = nodes
    print(f"\ncsp1+{heuristic}: {decided}/8 decided, {nodes} nodes")


@pytest.mark.parametrize("amo", ["sequential", "pairwise"])
def test_sat_amo_ablation(benchmark, amo):
    decided, nodes = benchmark.pedantic(
        _solve_batch, args=(f"sat+{amo}",), rounds=1, iterations=1
    )
    benchmark.extra_info["decided"] = decided
    print(f"\nsat+{amo}: {decided}/8 decided")


def test_symmetry_breaking_reduces_nodes(benchmark):
    """The headline ablation: rule (10) shrinks the search tree on a
    backtracking-heavy infeasible-ish instance batch."""

    def measure():
        with_sym = _solve_batch("csp2", symmetry_breaking=True)
        without = _solve_batch("csp2", symmetry_breaking=False)
        return with_sym, without

    (with_sym, without) = benchmark.pedantic(measure, rounds=1, iterations=1)
    print(f"\nnodes with symmetry: {with_sym[1]}, without: {without[1]}")
    # node count with the rule never exceeds without it on decided batches
    if with_sym[0] == without[0] == 8:
        assert with_sym[1] <= without[1]
