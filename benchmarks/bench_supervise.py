"""Supervision-overhead benchmark: watched children vs the plain pool.

Measures what fault tolerance costs on a pinned seeded grid of tiny
cells, where per-cell solve time is small and the process-per-cell
overhead of supervised execution is at its *worst*:

* ``plain``      — ``run_batch`` on the default in-process path;
* ``supervised`` — the same campaign with ``supervised=True`` (one
  watched child per cell: fork, pipe, sentinel wait, reap);
* ``chaos``      — supervised plus deterministic fault injection at the
  default smoke rate, counting faults and retries.

Statuses must be identical between plain and supervised (supervision is
semantically transparent); only wall-clock fields move between machines.

Usage::

    python benchmarks/bench_supervise.py --out BENCH_supervise.json
    python benchmarks/bench_supervise.py --smoke --out /tmp/smoke.json
"""

from __future__ import annotations

import argparse
import json
import platform as py_platform
import sys
import time

from repro.batch import ChaosConfig, cells_for_matrix, run_batch
from repro.generator import GeneratorConfig, generate_instances

SCHEMA = "bench-supervise/v1"


def _grid(smoke: bool) -> dict:
    """The pinned campaign grid (tiny cells stress per-cell overhead)."""
    if smoke:
        return {"count": 10, "n": 3, "tmax": 3, "seed": 2009,
                "time_limit": 2.0}
    return {"count": 40, "n": 4, "tmax": 4, "seed": 2009,
            "time_limit": 5.0}


def _campaign(cells, **kw) -> dict:
    """One timed run_batch pass -> summary dict."""
    t0 = time.monotonic()
    report = run_batch(cells, **kw)
    wall = time.monotonic() - t0
    statuses: dict[str, int] = {}
    for r in report.records:
        statuses[r.status] = statuses.get(r.status, 0) + 1
    return {
        "cells": report.total,
        "statuses": statuses,
        "faults": report.faults,
        "retried": report.retried,
        "wall_time_s": round(wall, 3),
        "cells_per_s": round(report.total / wall, 2) if wall > 0 else None,
    }


def main(argv=None) -> int:
    """Run the benchmark and write the JSON snapshot."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="tiny grid for CI latency")
    parser.add_argument("--out", default="BENCH_supervise.json")
    args = parser.parse_args(argv)

    grid = _grid(args.smoke)
    instances = generate_instances(
        GeneratorConfig(n=grid["n"], m=2, tmax=grid["tmax"]),
        grid["count"], seed=grid["seed"],
    )
    cells = cells_for_matrix(instances, ["csp2+dc"], grid["time_limit"])

    plain = _campaign(cells)
    supervised = _campaign(cells, supervised=True)
    chaos = _campaign(
        cells, chaos=ChaosConfig(seed=grid["seed"], rate=0.3),
        retries=1, grace=0.5,
    )
    if plain["statuses"] != supervised["statuses"]:
        print("FAIL: supervised statuses diverge from plain execution")
        return 1

    overhead = None
    if plain["wall_time_s"] > 0:
        overhead = round(
            supervised["wall_time_s"] / plain["wall_time_s"], 2
        )
    doc = {
        "schema": SCHEMA,
        "scale": "smoke" if args.smoke else "full",
        "python": py_platform.python_version(),
        "grid": grid,
        "plain": plain,
        "supervised": supervised,
        "chaos": chaos,
        "supervision_overhead_x": overhead,
    }
    with open(args.out, "w") as fh:
        json.dump(doc, fh, indent=2)
        fh.write("\n")
    print(
        f"bench_supervise: plain {plain['wall_time_s']}s, supervised "
        f"{supervised['wall_time_s']}s ({overhead}x), chaos "
        f"{chaos['wall_time_s']}s with {chaos['faults']} faults / "
        f"{chaos['retried']} retried -> {args.out}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
