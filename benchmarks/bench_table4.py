"""Table IV: scaling the task count (Tmax=15, m = ceil(U)).

Paper shape: average r converges to 1 and m grows linearly with n; the
hyperperiod approaches lcm(1..15) = 360360; CSP1 collapses (overruns /
memory) while the dedicated CSP2+(D-C) keeps answering but solves fewer
instances as n grows.
"""

import os

from repro.experiments.report import format_table4
from repro.experiments.table4 import Table4Config, run_table4

from conftest import CACHE_DIR, JOBS

PAPER = os.environ.get("REPRO_PAPER", "") == "1"


def _config() -> Table4Config:
    if PAPER:
        return Table4Config.paper_scale()
    return Table4Config(
        task_counts=(4, 8, 16, 32), instances_per_n=5, time_limit=0.4, seed=2009
    )


def test_table4(benchmark):
    result = benchmark.pedantic(
        run_table4, args=(_config(),),
        kwargs=dict(jobs=JOBS, cache_dir=CACHE_DIR), rounds=1, iterations=1,
    )
    print("\n" + format_table4(result))

    rows = result.rows
    ns = [row.n for row in rows]

    # r converges towards 1 (paper: 0.74 -> 0.99): weakly increasing-ish,
    # compare the ends which is robust at small sample sizes
    assert rows[-1].avg_r >= rows[0].avg_r

    # m grows linearly with n (paper: m ~ n/2.5); check monotone growth
    for a, b in zip(rows, rows[1:]):
        assert b.avg_m > a.avg_m

    # hyperperiod approaches lcm(1..15) = 360360
    assert rows[-1].avg_hyperperiod <= 360360
    assert rows[-1].avg_hyperperiod > rows[0].avg_hyperperiod

    # CSP2+(D-C) solves a decreasing share as n grows (81% -> 0% in the
    # paper); compare first vs last row
    first_dc = rows[0].per_solver["csp2+dc"]
    last_dc = rows[-1].per_solver["csp2+dc"]
    assert first_dc is not None and last_dc is not None
    assert first_dc[0] >= last_dc[0]

    # CSP1 never out-solves the dedicated solver at any n where both ran
    for row in rows:
        c1 = row.per_solver.get("csp1")
        dc = row.per_solver["csp2+dc"]
        if c1 is not None and dc is not None:
            assert c1[0] <= dc[0] + 1e-9, row
