"""Differential-testing benchmark: oracle cost and campaign throughput.

Two measurements on pinned seeded grids:

* ``oracle`` — the exact global-EDF test (``repro.baselines.edf_exact``)
  alone on every instance: verdict census, total simulated slots, total
  hashed configurations and the largest repeating cycle found.  These
  numbers are machine-independent (the oracle is deterministic), so the
  section doubles as a regression pin on the state-space explorer.
* ``campaign`` — a full :func:`repro.difftest.run_difftest` sweep with
  the default solver set: cells per second and — the soundness bar —
  the finding count, which must be 0 (``--check-schema`` enforces it,
  mirroring ``bench_analysis``'s agreement guard).

Only the ``wall_time_s`` / ``cells_per_s`` fields may move between
machines; every census is pinned by the seed.

Usage::

    python benchmarks/bench_difftest.py --out BENCH_difftest.json
    python benchmarks/bench_difftest.py --smoke --out /tmp/smoke.json
    python benchmarks/bench_difftest.py --check-schema BENCH_difftest.json
"""

from __future__ import annotations

import argparse
import json
import platform as py_platform
import sys
import time

from repro.baselines.edf_exact import EDF_SCHEDULABLE, edf_exact_test
from repro.difftest import DiffTestConfig, run_difftest
from repro.generator import GeneratorConfig, generate_instances

SCHEMA = "bench-difftest/v1"

#: top-level keys every BENCH_difftest.json must carry (CI schema guard)
REQUIRED_TOP_KEYS = ("schema", "scale", "python", "grid", "oracle", "campaign")
#: keys of the oracle section (CI schema guard)
REQUIRED_ORACLE_KEYS = (
    "verdicts", "slots", "configurations", "max_cycle_length", "wall_time_s"
)
#: keys of the campaign section (CI schema guard)
REQUIRED_CAMPAIGN_KEYS = (
    "solvers", "instances", "cells", "findings", "wall_time_s", "cells_per_s"
)


def _grid(smoke: bool) -> dict:
    """The pinned generator grid (small periods keep hyperperiods sane)."""
    if smoke:
        return {"count": 12, "n": 4, "tmax": 4, "m": "uniform",
                "seed": 0, "time_limit": 5.0}
    return {"count": 60, "n": 5, "tmax": 5, "m": "uniform",
            "seed": 0, "time_limit": 10.0}


def _oracle_section(grid: dict) -> dict:
    """Run edf-exact alone on the grid; aggregate state-space statistics."""
    cfg = GeneratorConfig(n=grid["n"], tmax=grid["tmax"], m=grid["m"])
    instances = generate_instances(cfg, grid["count"], seed=grid["seed"])
    verdicts: dict[str, int] = {}
    slots = 0
    configurations = 0
    max_cycle = 0
    t0 = time.perf_counter()
    for inst in instances:
        outcome = edf_exact_test(
            inst.system, inst.m, time_limit=grid["time_limit"]
        )
        verdicts[outcome.verdict] = verdicts.get(outcome.verdict, 0) + 1
        slots += outcome.slots
        configurations += outcome.configurations
        if outcome.verdict == EDF_SCHEDULABLE:
            max_cycle = max(max_cycle, outcome.cycle_length)
    return {
        "verdicts": dict(sorted(verdicts.items())),
        "slots": slots,
        "configurations": configurations,
        "max_cycle_length": max_cycle,
        "wall_time_s": round(time.perf_counter() - t0, 4),
    }


def _campaign_section(grid: dict) -> dict:
    """Run a full difftest sweep; throughput + the zero-findings bar."""
    config = DiffTestConfig(
        instances=grid["count"], seed=grid["seed"], n=grid["n"],
        tmax=grid["tmax"], m=grid["m"], time_limit=grid["time_limit"],
    )
    report = run_difftest(config)
    return {
        "solvers": list(config.solvers),
        "instances": report.instances,
        "cells": report.cells,
        "findings": len(report.findings),
        "finding_kinds": sorted({f.kind for f in report.findings}),
        "verdicts": report.verdicts,
        "wall_time_s": round(report.elapsed, 4),
        "cells_per_s": round(report.cells / report.elapsed, 3)
        if report.elapsed > 0 else 0.0,
    }


def run_bench(smoke: bool = False) -> dict:
    """Run both measurements and return the BENCH_difftest document."""
    grid = _grid(smoke)
    return {
        "schema": SCHEMA,
        "scale": "smoke" if smoke else "full",
        "python": py_platform.python_version(),
        "grid": grid,
        "oracle": _oracle_section(grid),
        "campaign": _campaign_section(grid),
    }


def check_schema(path: str) -> list[str]:
    """Validate a BENCH_difftest.json document; return problems (empty = ok)."""
    problems: list[str] = []
    try:
        with open(path) as fh:
            doc = json.load(fh)
    except (OSError, ValueError) as exc:
        return [f"cannot read {path}: {exc}"]
    for key in REQUIRED_TOP_KEYS:
        if key not in doc:
            problems.append(f"missing top-level key {key!r}")
    if doc.get("schema") != SCHEMA:
        problems.append(f"schema is {doc.get('schema')!r}, expected {SCHEMA!r}")
    for key in REQUIRED_ORACLE_KEYS:
        if key not in doc.get("oracle", {}):
            problems.append(f"section 'oracle' missing key {key!r}")
    for key in REQUIRED_CAMPAIGN_KEYS:
        if key not in doc.get("campaign", {}):
            problems.append(f"section 'campaign' missing key {key!r}")
    if doc.get("campaign", {}).get("findings", 1) != 0:
        problems.append(
            f"difftest findings recorded: "
            f"{doc.get('campaign', {}).get('findings')!r} (soundness bug)"
        )
    return problems


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument(
        "--out", default="BENCH_difftest.json", help="output JSON path"
    )
    ap.add_argument(
        "--smoke", action="store_true",
        help="tiny grid for CI (seconds, not minutes)",
    )
    ap.add_argument(
        "--check-schema", metavar="PATH", default=None,
        help="validate an existing document instead of running the grids",
    )
    args = ap.parse_args(argv)

    if args.check_schema:
        problems = check_schema(args.check_schema)
        for p in problems:
            print(f"{args.check_schema}: {p}", file=sys.stderr)
        if not problems:
            print(f"{args.check_schema}: schema ok")
        return 1 if problems else 0

    doc = run_bench(smoke=args.smoke)
    with open(args.out, "w") as fh:
        json.dump(doc, fh, indent=2)
        fh.write("\n")
    oracle = doc["oracle"]
    campaign = doc["campaign"]
    print(
        f"oracle: {sum(oracle['verdicts'].values())} instances, "
        f"{oracle['slots']} slots, {oracle['configurations']} configs "
        f"in {oracle['wall_time_s']:.3f}s ({oracle['verdicts']})"
    )
    print(
        f"campaign: {campaign['cells']} cells in "
        f"{campaign['wall_time_s']:.3f}s "
        f"({campaign['cells_per_s']:.2f} cells/s), "
        f"{campaign['findings']} findings"
    )
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
