"""Benchmarks for the future-work features built beyond the paper's tables.

* local search (``csp2-local``) vs the systematic dedicated solver on
  feasible instances — the paper's proposed trade-off (speed on SAT
  instances, no infeasibility proofs);
* the incremental minimum-m search;
* partitioned (first-fit and exact) vs global feasibility;
* priority-assignment search seeded by the (D-C) conjecture.
"""

import pytest

from repro.baselines import (
    exact_partition,
    first_fit_partition,
    heuristic_priority_search,
)
from repro.generator import GeneratorConfig, generate_instances, running_example
from repro.model import Platform
from repro.solvers import Feasibility, find_min_processors, create_solver


def _feasible_instances():
    """A reproducible batch filtered down to CSP-feasible instances."""
    out = []
    for inst in generate_instances(GeneratorConfig(n=6, m=3, tmax=5), 12, seed=23):
        r = create_solver("csp2+dc", inst.system, Platform.identical(inst.m)).solve(
            time_limit=1.0
        )
        if r.is_feasible:
            out.append(inst)
    return out


@pytest.mark.parametrize("name", ["csp2+dc", "csp2-local"])
def test_feasible_batch(benchmark, name):
    instances = _feasible_instances()
    assert instances

    def solve_all():
        found = 0
        for inst in instances:
            r = create_solver(
                name, inst.system, Platform.identical(inst.m), seed=0
            ).solve(time_limit=2.0)
            if r.status is Feasibility.FEASIBLE:
                found += 1
        return found

    found = benchmark.pedantic(solve_all, rounds=1, iterations=1)
    benchmark.extra_info["found"] = f"{found}/{len(instances)}"
    print(f"\n{name}: {found}/{len(instances)} feasible instances solved")
    if name == "csp2+dc":
        assert found == len(instances)  # systematic search never misses
    else:
        assert found >= len(instances) // 2  # local search finds most


def test_min_processors_search(benchmark):
    def run():
        res = find_min_processors(running_example(), time_limit_per_m=10)
        return res

    res = benchmark(run)
    assert res.m == 2 and res.exact


def test_partitioned_vs_global(benchmark):
    instances = generate_instances(GeneratorConfig(n=5, m=2, tmax=5), 8, seed=31)

    def run():
        counts = {"ff": 0, "exact": 0, "global": 0}
        for inst in instances:
            if first_fit_partition(inst.system, inst.m).found:
                counts["ff"] += 1
            if exact_partition(inst.system, inst.m, time_limit=5.0).found:
                counts["exact"] += 1
            r = create_solver(
                "csp2+dc", inst.system, Platform.identical(inst.m)
            ).solve(time_limit=1.0)
            if r.is_feasible:
                counts["global"] += 1
        return counts

    counts = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\npartitioned vs global: {counts}")
    assert counts["ff"] <= counts["exact"] <= counts["global"]


def test_priority_heuristic_search(benchmark):
    instances = [
        inst
        for inst in generate_instances(GeneratorConfig(n=4, m=2, tmax=5), 10, seed=37)
        if float(inst.utilization_ratio) <= 1.0
    ]

    def run():
        found = 0
        for inst in instances:
            res = heuristic_priority_search(
                inst.system, inst.m, time_limit=2.0, fall_back=False
            )
            if res.found:
                found += 1
        return found

    found = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nheuristic priority orders schedule {found}/{len(instances)} instances")


def test_csp1_with_restarts(benchmark):
    """The generic engine's randomized-restart mode (Choco-style) on the
    running example."""
    from repro.csp import Solver, var_order_min_domain
    from repro.encodings import encode_csp1

    system = running_example()

    def solve():
        enc = encode_csp1(system, Platform.identical(2))
        return Solver(
            enc.model, var_order=var_order_min_domain, seed=7, restart_nodes=256
        ).solve(time_limit=30)

    out = benchmark(solve)
    assert out.status.name == "SAT"
