"""Figure 1: regenerate the availability-interval chart of Example 1."""

from repro.experiments.figure1 import figure1


def test_figure1(benchmark):
    chart = benchmark(figure1)
    print("\n" + chart)

    lines = chart.splitlines()
    assert lines[0] == "hyperperiod T = 12"
    # tau1: back-to-back 2-slot windows -> releases at every even slot
    tau1 = next(l for l in lines if l.startswith("tau1")).split()[1:13]
    assert tau1 == ["[", "#"] * 6
    # tau2: released at 1, window length 4, third window wraps onto slot 0
    tau2 = next(l for l in lines if l.startswith("tau2")).split()[1:13]
    assert tau2 == ["#", "[", "#", "#", "#", "[", "#", "#", "#", "[", "#", "#"]
    # tau3: 2-of-3 pattern with idle slots at 2, 5, 8, 11
    tau3 = next(l for l in lines if l.startswith("tau3")).split()[1:13]
    assert tau3 == ["[", "#", ".", "[", "#", ".", "[", "#", ".", "[", "#", "."]
