"""Shared configuration for the benchmark harness.

Default scales are chosen so the whole suite finishes in a few minutes of
pure-Python compute while preserving the paper's qualitative shape; set
``REPRO_PAPER=1`` to run the published 500-instance / 30 s protocol
(hours — use the CLI's ``--paper`` for a single table instead).

All experiment drivers route through :mod:`repro.batch`; set
``REPRO_JOBS=N`` to fan the run matrices out over N worker processes and
``REPRO_CACHE_DIR=path`` to reuse cells across benchmark invocations.
"""

import os

import pytest

from repro.experiments.table1 import Table1Config, run_table1

PAPER = os.environ.get("REPRO_PAPER", "") == "1"
JOBS = int(os.environ.get("REPRO_JOBS", "1"))
CACHE_DIR = os.environ.get("REPRO_CACHE_DIR") or None


def table1_config() -> Table1Config:
    """The suite-wide Table I scale (paper scale under ``REPRO_PAPER=1``)."""
    if PAPER:
        return Table1Config.paper_scale()
    return Table1Config(n_instances=12, time_limit=0.35, seed=2009)


@pytest.fixture(scope="session")
def table1_result():
    """One shared Table I run reused by the Table II/III aggregations
    (exactly as the paper reuses the same 500-run records)."""
    return run_table1(table1_config(), jobs=JOBS, cache_dir=CACHE_DIR)
