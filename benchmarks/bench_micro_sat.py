"""Micro-benchmarks of the SAT substrate (CDCL + encodings)."""

from repro.encodings.sat1 import encode_sat1
from repro.generator import running_example, running_example_platform
from repro.sat import CNF, CdclSolver, SatStatus, exactly_k


def _php(pigeons: int, holes: int) -> CNF:
    cnf = CNF()
    var = [[cnf.new_var() for _ in range(holes)] for _ in range(pigeons)]
    for p in range(pigeons):
        cnf.add_clause(var[p])
    for h in range(holes):
        for p1 in range(pigeons):
            for p2 in range(p1 + 1, pigeons):
                cnf.add_clause([-var[p1][h], -var[p2][h]])
    return cnf


def test_cdcl_pigeonhole_unsat(benchmark):
    """Conflict-driven learning pressure: PHP(7,6) is UNSAT."""

    def solve():
        return CdclSolver(_php(7, 6)).solve()

    out = benchmark(solve)
    assert out.status is SatStatus.UNSAT
    assert out.stats.conflicts > 0


def test_cdcl_running_example(benchmark):
    """End-to-end SAT route on Example 1 (encode + solve + decode)."""
    system = running_example()
    platform = running_example_platform()

    def solve():
        enc = encode_sat1(system, platform)
        out = CdclSolver(enc.cnf).solve(time_limit=30)
        return enc, out

    enc, out = benchmark(solve)
    assert out.status is SatStatus.SAT


def test_encoding_size_pairwise_vs_sequential(benchmark):
    """Clause/variable counts of the two AMO encodings on Example 1."""
    system = running_example()
    platform = running_example_platform()

    def encode_both():
        pw = encode_sat1(system, platform, amo="pairwise")
        sq = encode_sat1(system, platform, amo="sequential")
        return pw.cnf, sq.cnf

    pw, sq = benchmark(encode_both)
    print(
        f"\npairwise:   {pw.n_vars} vars, {pw.n_clauses} clauses"
        f"\nsequential: {sq.n_vars} vars, {sq.n_clauses} clauses"
    )
    # both encode the same problem variables; sequential adds auxiliaries
    assert sq.n_vars >= pw.n_vars


def test_exactly_k_encoding_cost(benchmark):
    """Sequential-counter exactly-k over a wide literal set."""

    def encode():
        cnf = CNF()
        lits = cnf.new_vars(60)
        exactly_k(cnf, lits, 7)
        return cnf

    cnf = benchmark(encode)
    assert cnf.n_clauses > 60
