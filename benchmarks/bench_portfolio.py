"""Portfolio-vs-best-single wall-clock on a small mixed instance set.

The acceptance bar for the racing meta-solver: with ``jobs >= 2`` the
portfolio finishes no slower than the *slowest* member run alone on
every instance (it races, so its wall tracks the winner plus process
overhead), and its verdict matches the single-solver verdict.  The
benchmark records both the portfolio wall and each member's solo wall
in ``extra_info`` so regressions in the cancellation path show up as a
widening gap.
"""

import time

import pytest

from repro.generator import GeneratorConfig, generate_instances
from repro.solvers import Feasibility, solve

MEMBERS = ("csp2+dc", "sat")
PORTFOLIO = "portfolio:" + ",".join(MEMBERS)
TIME_LIMIT = 5.0


def mixed_instances():
    """A feasible/infeasible mix from the Section VII-A generator."""
    return generate_instances(GeneratorConfig(n=5, m=2, tmax=5), 6, seed=77)


@pytest.mark.parametrize("inst", mixed_instances(), ids=lambda i: f"seed{i.seed}")
def test_portfolio_vs_best_single(benchmark, inst):
    solo_wall = {}
    solo_status = {}
    for name in MEMBERS:
        t0 = time.monotonic()
        solo_status[name] = solve(
            inst.system, m=inst.m, solver=name, time_limit=TIME_LIMIT
        ).status
        solo_wall[name] = time.monotonic() - t0

    report = benchmark(
        lambda: solve(
            inst.system, m=inst.m, solver=PORTFOLIO, time_limit=TIME_LIMIT
        )
    )
    # verdict parity with the reference member
    assert report.status is solo_status["csp2+dc"]
    assert report.status is not Feasibility.UNKNOWN
    benchmark.extra_info["portfolio_elapsed"] = round(report.elapsed, 4)
    benchmark.extra_info["solo_wall"] = {
        k: round(v, 4) for k, v in solo_wall.items()
    }
    benchmark.extra_info["winner"] = report.winner
    # no worse than the slowest member run alone (generous overhead margin
    # for process spawn on tiny instances)
    assert report.elapsed <= max(solo_wall.values()) + 2.0
