"""Micro-benchmarks of the CSP engine (domains, propagation, search)."""

from repro.csp import Model, Solver, Status
from repro.encodings import encode_csp1, encode_csp2
from repro.generator import running_example, running_example_platform


def test_pigeonhole_unsat_search(benchmark):
    """Pure backtracking pressure: 8 pigeons, 7 holes, value-consistent
    alldifferent (no clever propagation) — measures raw node throughput."""

    def build_and_solve():
        m = Model()
        vs = [m.int_var(0, 6) for _ in range(8)]
        m.add_all_different_except(vs, None)
        return Solver(m).solve()

    out = benchmark(build_and_solve)
    assert out.status is Status.UNSAT


def test_encode_csp1_running_example(benchmark):
    """Model construction cost of the boolean encoding."""
    system = running_example()
    platform = running_example_platform()
    enc = benchmark(encode_csp1, system, platform)
    assert enc.n_variables == 64  # sum_i m*(T/T_i)*D_i = 2*(6*2 + 3*4 + 4*2)


def test_encode_csp2_running_example(benchmark):
    """Model construction cost of the n-ary encoding."""
    system = running_example()
    platform = running_example_platform()
    enc = benchmark(encode_csp2, system, platform)
    assert enc.n_variables == 24  # m * T


def test_solve_csp1_running_example(benchmark):
    """Generic engine on CSP1 (the paper's Choco role) on Example 1."""
    system = running_example()
    platform = running_example_platform()

    def solve():
        enc = encode_csp1(system, platform)
        return Solver(enc.model).solve(time_limit=30)

    out = benchmark(solve)
    assert out.status is Status.SAT


def test_solve_csp2_generic_running_example(benchmark):
    """Generic engine on CSP2 on Example 1."""
    system = running_example()
    platform = running_example_platform()

    def solve():
        enc = encode_csp2(system, platform)
        return Solver(enc.model).solve(time_limit=30)

    out = benchmark(solve)
    assert out.status is Status.SAT


def test_propagation_fixpoint_throughput(benchmark):
    """Fixpoint over a chain of NonDecreasing + CountEq constraints."""

    def build_and_propagate():
        m = Model()
        vs = [m.int_var(0, 9) for _ in range(40)]
        m.add_non_decreasing(vs)
        for k in range(0, 36, 4):
            m.add_count_eq(vs[k : k + 4], 5, 1)
        return Solver(m).solve(node_limit=200)

    out = benchmark(build_and_propagate)
    assert out.stats.propagations > 0
