"""Screening-cascade benchmark: decided fraction and end-to-end speedup.

Runs the paper's ``d-first`` generator grid (200 seeded instances at the
full scale) through three measurements per instance:

* the bare cascade (``repro.analysis.run_cascade``) — which test, if
  any, decides the instance and how long the screen itself takes;
* the plain exact pipeline (``csp2+dc``) — the *before* number;
* the screened pipeline (``screen+csp2+dc``) — the *after* number: the
  cascade answers directly or the exact engine sees the instance with
  the cascade's overhead on top.

Budgets are *node* limits, never time limits, so the statuses, the
decided-by-test counts and the agreement figures are machine-independent
— only the wall-clock fields may move between machines.  The checked-in
snapshots next to this file record the before/after comparison:

* ``BENCH_analysis.full.json`` — the 200-instance acceptance grid;
* ``BENCH_analysis.smoke.json`` — the tiny CI grid.

``agreement`` cross-checks every cascade verdict against the exact
``csp2+dc`` answer on the same instance: ``disagreements`` must be 0
(certificates may abstain, never contradict) and CI re-runs the smoke
grid to keep it that way.

Usage::

    python benchmarks/bench_analysis.py --out BENCH_analysis.json
    python benchmarks/bench_analysis.py --smoke --out /tmp/smoke.json
    python benchmarks/bench_analysis.py --check-schema BENCH_analysis.json
"""

from __future__ import annotations

import argparse
import json
import platform as py_platform
import sys
import time

from repro.analysis import run_cascade
from repro.generator import GeneratorConfig, generate_instances
from repro.model.platform import Platform
from repro.solvers.registry import create_solver

SCHEMA = "bench-analysis/v1"

#: top-level keys every BENCH_analysis.json must carry (CI schema guard)
REQUIRED_TOP_KEYS = (
    "schema",
    "scale",
    "python",
    "grid",
    "screen",
    "plain",
    "screened",
    "agreement",
    "totals",
)
#: keys of the per-pipeline sections (CI schema guard)
REQUIRED_PIPELINE_KEYS = ("solver", "wall_time_s", "status_counts", "nodes")

#: the exact engine both pipelines bottom out in
EXACT = "csp2+dc"
SCREENED = "screen+csp2+dc"


def _grid(smoke: bool) -> dict:
    """The pinned generator grid (the paper's d-first recipe)."""
    if smoke:
        return {"count": 16, "n": 6, "tmax": 5, "m": "uniform",
                "order": "d-first", "seed": 2009, "node_limit": 10_000}
    return {"count": 200, "n": 10, "tmax": 7, "m": "uniform",
            "order": "d-first", "seed": 2009, "node_limit": 50_000}


def _instances(grid: dict):
    """Materialize the grid's instances deterministically."""
    cfg = GeneratorConfig(
        n=grid["n"], tmax=grid["tmax"], m=grid["m"], order=grid["order"]
    )
    return generate_instances(cfg, grid["count"], seed=grid["seed"])


def _solve_timed(solver: str, system, m: int, node_limit: int):
    """One pipeline run: (status, wall seconds, search nodes)."""
    engine = create_solver(solver, system, Platform.identical(m))
    t0 = time.perf_counter()
    result = engine.solve(node_limit=node_limit)
    return result.status.value, time.perf_counter() - t0, result.stats.nodes


def run_bench(smoke: bool = False) -> dict:
    """Run the grid and return the BENCH_analysis document."""
    grid = _grid(smoke)
    instances = _instances(grid)
    node_limit = grid["node_limit"]

    decided_by: dict[str, int] = {}
    screen_wall = 0.0
    decided = 0
    cascade_verdicts: list[str] = []
    pipelines = {
        EXACT: {"wall": 0.0, "nodes": 0, "statuses": []},
        SCREENED: {"wall": 0.0, "nodes": 0, "statuses": []},
    }
    compared = 0
    disagreements: list[dict] = []

    for inst in instances:
        outcome = run_cascade(inst.system, inst.m)
        screen_wall += outcome.elapsed
        cascade_verdicts.append(outcome.verdict.value)
        if outcome.decided is not None:
            decided += 1
            name = outcome.decided.test_name
            decided_by[name] = decided_by.get(name, 0) + 1

        for solver in (EXACT, SCREENED):
            status, wall, nodes = _solve_timed(
                solver, inst.system, inst.m, node_limit
            )
            pipelines[solver]["wall"] += wall
            pipelines[solver]["nodes"] += nodes
            pipelines[solver]["statuses"].append(status)

        exact_status = pipelines[EXACT]["statuses"][-1]
        cascade_status = cascade_verdicts[-1]
        if cascade_status != "unknown" and exact_status != "unknown":
            compared += 1
            if cascade_status != exact_status:
                disagreements.append(
                    {"seed": inst.seed, "cascade": cascade_status,
                     "exact": exact_status}
                )

    def _section(solver: str) -> dict:
        data = pipelines[solver]
        statuses = data["statuses"]
        return {
            "solver": solver,
            "wall_time_s": round(data["wall"], 4),
            "status_counts": {
                s: statuses.count(s)
                for s in ("feasible", "infeasible", "unknown")
            },
            "nodes": data["nodes"],
        }

    plain = _section(EXACT)
    screened = _section(SCREENED)
    speedup = (
        plain["wall_time_s"] / screened["wall_time_s"]
        if screened["wall_time_s"] > 0
        else 0.0
    )
    return {
        "schema": SCHEMA,
        "scale": "smoke" if smoke else "full",
        "python": py_platform.python_version(),
        "grid": grid,
        "screen": {
            "decided": decided,
            "decided_fraction": round(decided / len(instances), 4),
            "by_test": dict(sorted(decided_by.items())),
            "wall_time_s": round(screen_wall, 4),
        },
        "plain": plain,
        "screened": screened,
        "agreement": {
            "compared": compared,
            "disagreements": len(disagreements),
            "details": disagreements,
        },
        "totals": {
            "instances": len(instances),
            "speedup": round(speedup, 3),
            "nodes_saved": plain["nodes"] - screened["nodes"],
        },
    }


def check_schema(path: str) -> list[str]:
    """Validate a BENCH_analysis.json document; return problems (empty = ok)."""
    problems: list[str] = []
    try:
        with open(path) as fh:
            doc = json.load(fh)
    except (OSError, ValueError) as exc:
        return [f"cannot read {path}: {exc}"]
    for key in REQUIRED_TOP_KEYS:
        if key not in doc:
            problems.append(f"missing top-level key {key!r}")
    if doc.get("schema") != SCHEMA:
        problems.append(f"schema is {doc.get('schema')!r}, expected {SCHEMA!r}")
    for section in ("plain", "screened"):
        for key in REQUIRED_PIPELINE_KEYS:
            if key not in doc.get(section, {}):
                problems.append(f"section {section!r} missing key {key!r}")
    agreement = doc.get("agreement", {})
    if agreement.get("disagreements", 1) != 0:
        problems.append(
            f"cascade/exact disagreements recorded: "
            f"{agreement.get('disagreements')!r} (soundness bug)"
        )
    return problems


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument(
        "--out", default="BENCH_analysis.json", help="output JSON path"
    )
    ap.add_argument(
        "--smoke", action="store_true",
        help="tiny grid for CI (seconds, not minutes)",
    )
    ap.add_argument(
        "--check-schema", metavar="PATH", default=None,
        help="validate an existing document instead of running the grid",
    )
    args = ap.parse_args(argv)

    if args.check_schema:
        problems = check_schema(args.check_schema)
        for p in problems:
            print(f"{args.check_schema}: {p}", file=sys.stderr)
        if not problems:
            print(f"{args.check_schema}: schema ok")
        return 1 if problems else 0

    doc = run_bench(smoke=args.smoke)
    with open(args.out, "w") as fh:
        json.dump(doc, fh, indent=2)
        fh.write("\n")
    screen = doc["screen"]
    print(
        f"{doc['totals']['instances']} instances: screen decided "
        f"{screen['decided']} ({screen['decided_fraction'] * 100:.1f}%) "
        f"in {screen['wall_time_s']:.3f}s"
    )
    print(
        f"  plain {doc['plain']['solver']}: {doc['plain']['wall_time_s']:.3f}s"
        f"  screened {doc['screened']['solver']}: "
        f"{doc['screened']['wall_time_s']:.3f}s"
        f"  speedup: {doc['totals']['speedup']:.2f}x"
    )
    print(
        f"  agreement: {doc['agreement']['compared']} compared, "
        f"{doc['agreement']['disagreements']} disagreements"
    )
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
