"""Vectorised-kernel benchmark: kernel vs scalar paths, parity enforced.

Times the two hot paths that :mod:`repro.kernels` replaced against the
scalar references they must stay byte-identical to:

* **simulator** — the block-stepping kernel
  (:func:`repro.kernels.simulate.simulate_static`, reached through
  ``static_key``) vs the slot-by-slot loop of
  :func:`repro.baselines.simulator.simulate_priority_policy`, for
  global EDF and global fixed priority on a pinned seeded grid;
* **demand** — the numpy prefix-sum interval-load table
  (:mod:`repro.kernels.demand`) vs its pure-Python rolling sweep
  (forced via ``REPRO_NO_NUMPY=1``), over the necessary-condition
  certificates.

Every cell *asserts* result equality before recording a time, so the
benchmark doubles as a coarse parity check: a speedup obtained by
diverging is a crash, not a number.  Statuses and verdicts are
machine-independent; only the wall-clock fields may move across runs.

Usage::

    python benchmarks/bench_kernels.py --out BENCH_kernels.json
    python benchmarks/bench_kernels.py --smoke --out /tmp/smoke.json
    python benchmarks/bench_kernels.py --check-schema BENCH_kernels.json
"""

from __future__ import annotations

import argparse
import json
import os
import random
import sys
import time

from repro.analysis import necessary
from repro.baselines.simulator import simulate_priority_policy
from repro.generator.random_systems import generate_system
from repro.kernels import have_numpy

SCHEMA = "bench-kernels/v1"

#: top-level keys every BENCH_kernels.json must carry (CI schema guard)
REQUIRED_TOP_KEYS = ("schema", "scale", "python", "numpy", "sections", "totals")
#: per-section keys (CI schema guard)
REQUIRED_SECTION_KEYS = (
    "name",
    "instances",
    "kernel_s",
    "scalar_s",
    "speedup",
)


def _systems(count: int, tmax_choices=(5, 6, 8, 10)):
    out = []
    for seed in range(count):
        rng = random.Random(seed)
        n = rng.randint(2, 6)
        out.append((generate_system(rng, n, rng.choice(tmax_choices)),
                    rng.randint(1, 3)))
    return out


def _sim_obs(res):
    table = None if res.schedule is None else res.schedule.table.tolist()
    return (res.schedulable, res.missed, res.cycles_simulated, table)


def _bench_simulator(count: int) -> dict:
    """EDF + fixed-priority: block-stepping kernel vs slot-by-slot loop."""
    cases = []
    # longer periods -> longer hyperperiods, where block stepping pays
    for system, m in _systems(count, tmax_choices=(8, 10, 12, 15)):
        rng = random.Random(system.hyperperiod * 31 + m)
        order = list(range(system.n))
        rng.shuffle(order)
        rank = [0] * system.n
        for pos, i in enumerate(order):
            rank[i] = pos
        cases.append((system, m, rank))

    def edf_key(i, rel, dl, rem):
        return (dl, i)

    kernel_s = scalar_s = 0.0
    for system, m, rank in cases:
        t0 = time.perf_counter()
        k_edf = simulate_priority_policy(
            system, m, priority=edf_key, static_key=("edf", None)
        )
        k_fp = simulate_priority_policy(
            system, m, priority=lambda i, r, d, x: (rank[i], i),
            static_key=("rank", rank),
        )
        kernel_s += time.perf_counter() - t0
        t0 = time.perf_counter()
        s_edf = simulate_priority_policy(system, m, priority=edf_key)
        s_fp = simulate_priority_policy(
            system, m, priority=lambda i, r, d, x: (rank[i], i)
        )
        scalar_s += time.perf_counter() - t0
        assert _sim_obs(k_edf) == _sim_obs(s_edf), "EDF kernel diverged"
        assert _sim_obs(k_fp) == _sim_obs(s_fp), "FP kernel diverged"
    return {
        "name": "simulator",
        "instances": len(cases) * 2,
        "kernel_s": round(kernel_s, 6),
        "scalar_s": round(scalar_s, 6),
        "speedup": round(scalar_s / kernel_s, 3) if kernel_s else None,
    }


def _demand_obs(system, m):
    certs = necessary.necessary_certificates(system, m)
    return (
        [(c.verdict.value, c.test_name, c.witness) for c in certs],
        necessary.processor_lower_bound(system),
    )


def _bench_demand(count: int) -> dict:
    """Necessary-condition certificates: numpy table vs Python sweep."""
    cases = _systems(count)
    t0 = time.perf_counter()
    with_np = [_demand_obs(s, m) for s, m in cases]
    kernel_s = time.perf_counter() - t0
    os.environ["REPRO_NO_NUMPY"] = "1"
    try:
        t0 = time.perf_counter()
        without = [_demand_obs(s, m) for s, m in cases]
        scalar_s = time.perf_counter() - t0
    finally:
        del os.environ["REPRO_NO_NUMPY"]
    assert with_np == without, "demand kernel diverged from Python sweep"
    return {
        "name": "demand",
        "instances": len(cases),
        "kernel_s": round(kernel_s, 6),
        "scalar_s": round(scalar_s, 6),
        "speedup": round(scalar_s / kernel_s, 3) if kernel_s else None,
    }


def run_grid(smoke: bool = False) -> dict:
    """The full benchmark document (tiny grid under ``--smoke``)."""
    sim_count = 12 if smoke else 120
    demand_count = 10 if smoke else 80
    sections = [_bench_simulator(sim_count), _bench_demand(demand_count)]
    totals = {
        "kernel_s": round(sum(s["kernel_s"] for s in sections), 6),
        "scalar_s": round(sum(s["scalar_s"] for s in sections), 6),
    }
    return {
        "schema": SCHEMA,
        "scale": "smoke" if smoke else "default",
        "python": sys.version.split()[0],
        "numpy": have_numpy(),
        "sections": sections,
        "totals": totals,
    }


def check_schema(path: str) -> list[str]:
    """Schema violations in a BENCH_kernels.json file (empty = OK)."""
    with open(path) as fh:
        doc = json.load(fh)
    problems = []
    for key in REQUIRED_TOP_KEYS:
        if key not in doc:
            problems.append(f"missing top-level key {key!r}")
    if doc.get("schema") != SCHEMA:
        problems.append(f"schema is {doc.get('schema')!r}, expected {SCHEMA!r}")
    for section in doc.get("sections", []):
        for key in REQUIRED_SECTION_KEYS:
            if key not in section:
                problems.append(
                    f"section {section.get('name')!r} missing {key!r}"
                )
    return problems


def main(argv: list[str] | None = None) -> int:
    """CLI: run the grid or check a snapshot's schema."""
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--out", default=None, help="write the JSON document here")
    ap.add_argument(
        "--smoke", action="store_true", help="tiny grid for CI (seconds)"
    )
    ap.add_argument(
        "--check-schema", metavar="PATH",
        help="validate an existing snapshot instead of running",
    )
    args = ap.parse_args(argv)
    if args.check_schema:
        problems = check_schema(args.check_schema)
        for p in problems:
            print(f"schema: {p}", file=sys.stderr)
        return 1 if problems else 0
    doc = run_grid(smoke=args.smoke)
    text = json.dumps(doc, indent=2)
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(text + "\n")
        print(f"wrote {args.out}")
    else:
        print(text)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
