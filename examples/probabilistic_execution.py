#!/usr/bin/env python
"""Probabilistic execution times (the paper's long-term future work).

Section VIII: "move from the usual deterministic setting — where
worst-case execution times are considered — to probabilistic settings".
Under the paper's own anomaly-avoidance rule (processors idle through
unused WCET budget) the schedule keeps every deadline with probability 1;
what varies is how much of the reserved capacity is actually used.  This
example solves the running example for WCETs, attaches execution-time
distributions, and quantifies the reserved-but-unused capacity both in
closed form and by Monte-Carlo simulation.

Run:  python examples/probabilistic_execution.py
"""

from fractions import Fraction

from repro import solve
from repro.generator import running_example
from repro.stochastic import (
    ExecTimeDistribution,
    expected_utilization,
    simulate_actual_usage,
)


def main() -> None:
    system = running_example()
    result = solve(system, m=2, time_limit=30)
    assert result.is_feasible
    schedule = result.schedule
    wcet_busy = Fraction(schedule.busy_slots(), schedule.m * schedule.horizon)
    print(f"WCET schedule reserves {schedule.busy_slots()} of "
          f"{schedule.m * schedule.horizon} slots "
          f"({float(wcet_busy):.1%} busy if every job runs to its WCET)\n")

    # measurement-style distributions: jobs usually finish early
    dists = [
        ExecTimeDistribution.deterministic(1),                    # tau1: C=1 always
        ExecTimeDistribution({1: Fraction(1, 4), 2: Fraction(1, 2), 3: Fraction(1, 4)}),
        ExecTimeDistribution.uniform(1, 2),                       # tau3
    ]
    for task, dist in zip(system, dists):
        print(f"  {task.name}: support={dist.support}  E[a]={dist.mean} "
              f"(WCET {task.wcet})")
    print()

    expected = expected_utilization(schedule, dists)
    print(f"closed-form expected busy fraction: {expected} = {float(expected):.1%}")

    stats = simulate_actual_usage(schedule, dists, samples=5000, seed=42)
    print(f"Monte-Carlo ({stats.samples} hyperperiods): "
          f"mean {stats.mean_busy_fraction:.1%}, "
          f"range [{stats.min_busy_fraction:.1%}, {stats.max_busy_fraction:.1%}]")
    print(f"P(every reserved slot used) = {stats.p_full_usage:.3f}")
    for task, unused in zip(system, stats.mean_unused_per_job):
        print(f"  {task.name}: mean unused reservation per job = {unused:.2f} slots")

    gap = float(wcet_busy - expected)
    print(f"\n-> on average {gap:.1%} of the platform is reserved but idle: the")
    print("   price of deterministic guarantees, and exactly the margin a")
    print("   probabilistic analysis (the paper's future work) would reclaim.")
    assert abs(stats.mean_busy_fraction - float(expected)) < 0.02


if __name__ == "__main__":
    main()
