#!/usr/bin/env python
"""The redesigned solving API on a mixed workload.

Three things in one script:

1. ``Problem`` — each instance becomes a value object carrying its own
   budget and label;
2. ``solve_iter`` — the streaming front door: reports arrive as cells
   complete across worker processes, not when the whole matrix is done;
3. ``portfolio:...`` — each instance is raced between the dedicated
   CSP2 solver and the SAT route, so every cell finishes at about the
   speed of whichever member is better on it, and the JSONL lines show
   which member won.

Run:  python examples/streaming_portfolio.py
"""

import json

from repro import Problem, solve_iter
from repro.generator import GeneratorConfig, generate_instances

PORTFOLIO = "portfolio:csp2+dc,sat"
N_INSTANCES = 8


def main() -> None:
    instances = generate_instances(
        GeneratorConfig(n=5, m=2, tmax=5), N_INSTANCES, seed=7
    )
    problems = [
        Problem.of(
            inst.system, m=inst.m, time_limit=10.0, label=f"seed{inst.seed}"
        )
        for inst in instances
    ]

    print(f"racing {PORTFOLIO!r} on {N_INSTANCES} instances, streaming:\n")
    lines = []
    for report in solve_iter(problems, PORTFOLIO, jobs=2):
        print(
            f"  [{report.index}] {report.problem.label:>7}  "
            f"{report.status_label:<10}  winner={report.winner:<8}  "
            f"{report.elapsed:.3f}s"
        )
        lines.append(json.dumps(report.to_dict()))

    print("\neach report round-trips as one JSONL line, e.g. (truncated):")
    print(" ", lines[0][:100], "...")


if __name__ == "__main__":
    main()
