#!/usr/bin/env python
"""Quickstart: solve the paper's running example end to end.

Builds Example 1 from the paper (three periodic tasks, two identical
processors, hyperperiod 12), prints its availability-interval chart
(Figure 1), solves it with the dedicated CSP2+(D-C) solver, validates the
schedule against the feasibility conditions C1-C4 and prints the Gantt
chart plus quality metrics.

Run:  python examples/quickstart.py
"""

from repro import (
    Platform,
    TaskSystem,
    compute_metrics,
    render_gantt,
    render_intervals,
    solve,
    validate,
)


def main() -> None:
    # the paper's Example 1: tau_i = (O, C, D, T)
    system = TaskSystem.from_tuples(
        [
            (0, 1, 2, 2),  # tau1: one unit every 2 slots, deadline 2
            (1, 3, 4, 4),  # tau2: released at 1, needs 3 of every 4 slots
            (0, 2, 2, 3),  # tau3: both slots of a 2-slot window every 3
        ]
    )
    print("== Figure 1: availability intervals over one hyperperiod ==")
    print(render_intervals(system))
    print()

    print(f"utilization U = {system.utilization} "
          f"(= {float(system.utilization):.3f}); m = 2 => r = "
          f"{float(system.utilization_ratio(2)):.3f}")
    print()

    result = solve(system, platform=Platform.identical(2), solver="csp2+dc")
    print(f"solver: csp2+dc -> {result.status.value} "
          f"({result.stats.nodes} nodes, {result.stats.elapsed * 1000:.1f} ms)")
    assert result.is_feasible, "the running example is feasible!"

    schedule = result.schedule
    check = validate(schedule)
    print(f"validator: {'C1-C4 all hold' if check.ok else check.violations}")
    print()
    print("== the cyclic schedule (repeats every 12 slots, Theorem 1) ==")
    print(render_gantt(schedule))
    print()

    metrics = compute_metrics(schedule)
    print(
        f"metrics: {metrics.busy_slots}/{metrics.total_slots} slots busy, "
        f"{metrics.migrations} migrations, {metrics.preemptions} preemptions, "
        f"{metrics.jobs} jobs per hyperperiod"
    )


if __name__ == "__main__":
    main()
