#!/usr/bin/env python
"""Compare every solver family on a batch of random instances.

Reproduces the spirit of the paper's Table I at demo scale: the paper's
six configurations (CSP1 generic, dedicated CSP2 x five value orderings)
plus this reproduction's extras (generic-engine CSP2 and the SAT route),
on Section VII-A random workloads.  Prints per-solver solve counts,
overruns and mean search effort, and cross-checks that all solvers agree
instance by instance.

Run:  python examples/solver_shootout.py
"""

from collections import defaultdict

from repro import Platform, create_solver, validate
from repro.generator import GeneratorConfig, generate_instances

SOLVERS = [
    "csp1",
    "csp2",
    "csp2+rm",
    "csp2+dm",
    "csp2+tc",
    "csp2+dc",
    "csp2-generic+dc",
    "sat",
]

N_INSTANCES = 12
TIME_LIMIT = 1.0


def main() -> None:
    config = GeneratorConfig(n=6, m=3, tmax=6)
    instances = generate_instances(config, N_INSTANCES, seed=42)
    print(
        f"{N_INSTANCES} random instances (n={config.n}, m={config.m}, "
        f"Tmax={config.tmax}), {TIME_LIMIT:g}s budget per run\n"
    )

    stats = defaultdict(lambda: {"feasible": 0, "infeasible": 0, "unknown": 0,
                                 "nodes": 0, "time": 0.0})
    verdicts: dict[int, dict[str, str]] = defaultdict(dict)
    for idx, inst in enumerate(instances):
        platform = Platform.identical(inst.m)
        for name in SOLVERS:
            result = create_solver(name, inst.system, platform).solve(
                time_limit=TIME_LIMIT
            )
            s = stats[name]
            s[result.status.value] += 1
            s["nodes"] += result.stats.nodes
            s["time"] += result.stats.elapsed
            verdicts[idx][name] = result.status.value
            if result.schedule is not None:
                assert validate(result.schedule).ok, (name, idx)

    header = f"{'solver':18s} {'feasible':>9s} {'infeasible':>11s} " \
             f"{'overrun':>8s} {'mean nodes':>11s} {'mean time':>10s}"
    print(header)
    print("-" * len(header))
    for name in SOLVERS:
        s = stats[name]
        print(
            f"{name:18s} {s['feasible']:9d} {s['infeasible']:11d} "
            f"{s['unknown']:8d} {s['nodes'] / N_INSTANCES:11.0f} "
            f"{s['time'] / N_INSTANCES:9.3f}s"
        )

    print("\ncross-check: decided verdicts must agree per instance")
    disagreements = 0
    for idx, per_solver in verdicts.items():
        decided = {v for v in per_solver.values() if v != "unknown"}
        if len(decided) > 1:
            disagreements += 1
            print(f"  instance {idx}: {per_solver} !!")
    print("  all consistent" if disagreements == 0 else f"  {disagreements} conflicts")
    assert disagreements == 0


if __name__ == "__main__":
    main()
