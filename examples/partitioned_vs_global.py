#!/usr/bin/env python
"""Partitioned vs global scheduling (the paper's Section I dichotomy).

The paper studies *global* scheduling — tasks and jobs may migrate — and
cites constraint programming for the *partitioned* case as prior work [5].
This example quantifies the gap on concrete instances:

1. The running example is globally feasible on two processors, but NO
   partition of its three tasks onto two processors is feasible — proved
   exhaustively with an exact uniprocessor EDF test per bin.  Migration is
   load-bearing.

2. Across random instances, it measures how often each approach succeeds:
   first-fit partitioning <= exact partitioning <= global CSP (the last
   inequality is the theoretical dominance of global scheduling).

3. The minimum-m view: the incremental search (the paper's future-work
   algorithm) finds the smallest sufficient machine count, globally and
   partitioned.

Run:  python examples/partitioned_vs_global.py
"""

from repro import Platform, create_solver
from repro.baselines import exact_partition, first_fit_partition
from repro.generator import GeneratorConfig, generate_instances, running_example
from repro.solvers import find_min_processors


def demo_running_example() -> None:
    system = running_example()
    print("== the running example: migration is essential ==")
    glob = create_solver("csp2+dc", system, Platform.identical(2)).solve(time_limit=30)
    print(f"  global CSP on m=2:        {glob.status.value}")

    part = exact_partition(system, 2)
    print(
        f"  exact partitioning on m=2: "
        f"{'found ' + str(part.assignment) if part.found else 'no partition exists'}"
        f" ({part.partitions_tried} bin-feasibility checks)"
    )
    assert glob.is_feasible and not part.found and part.exact
    print("  -> feasible globally, provably unpartitionable: jobs must migrate\n")


def demo_success_rates(n_instances: int = 25) -> None:
    print("== success rates across random instances ==")
    config = GeneratorConfig(n=5, m=3, tmax=5)
    instances = generate_instances(config, n_instances, seed=17)

    counts = {"first-fit": 0, "exact partition": 0, "global CSP": 0}
    for inst in instances:
        if first_fit_partition(inst.system, inst.m).found:
            counts["first-fit"] += 1
        if exact_partition(inst.system, inst.m).found:
            counts["exact partition"] += 1
        r = create_solver("csp2+dc", inst.system, Platform.identical(inst.m)).solve(
            time_limit=2.0
        )
        if r.is_feasible:
            counts["global CSP"] += 1

    for k, v in counts.items():
        print(f"  {k:16s} {v:3d}/{n_instances}")
    assert counts["first-fit"] <= counts["exact partition"] <= counts["global CSP"]
    print(
        "  -> dominance holds (first-fit <= exact partition <= global).\n"
        "     Note the counts usually coincide: on Section VII-A random\n"
        "     workloads, migration-essential instances like the running\n"
        "     example are rare — the global-vs-partitioned gap is real but\n"
        "     thin, which is why the crafted Example 1 matters.\n"
    )


def demo_min_processors() -> None:
    print("== smallest sufficient m (incremental search, paper Sec. VIII) ==")
    system = running_example()
    res = find_min_processors(system, time_limit_per_m=10)
    print(f"  global:      m = {res.m} ({'exact' if res.exact else 'upper bound'})")

    m = res.m
    while not exact_partition(system, m).found:
        m += 1
    print(f"  partitioned: m = {m}")
    print("  -> the partitioned penalty for this workload is "
          f"{m - res.m} extra processor(s)")


if __name__ == "__main__":
    demo_running_example()
    demo_success_rates()
    demo_min_processors()
