#!/usr/bin/env python
"""Heterogeneous processors (paper Section VI-A): dedicated accelerators.

Scenario: a control board with one general-purpose core and one signal
processor.  The filter task runs twice as fast on the DSP and the logging
task cannot run on it at all (``s = 0`` models dedicated processors).  The
encodings switch to the weighted execution constraints (11)/(12) and the
dedicated solver orders processors by the paper's quality measure
``Q(P_j) = sum_i s_ij C_i / T_i``.

Run:  python examples/heterogeneous_platform.py
"""

from repro import Platform, TaskSystem, create_solver, render_gantt, validate


def main() -> None:
    # (O, C, D, T) — C is *execution units*, not slots: at rate 2 a C=4 job
    # finishes in 2 slots, which is how the filter meets its D=2 deadline.
    system = TaskSystem.from_tuples(
        [
            (0, 4, 2, 4),  # filter: impossible at rate 1 (C > D)!
            (0, 1, 2, 2),  # control loop
            (0, 2, 4, 4),  # logger
        ],
        names=["filter", "control", "logger"],
    )
    #                 CPU  DSP
    rates = [
        [1, 2],  # filter: prefers the DSP
        [1, 1],  # control: anywhere
        [1, 0],  # logger: CPU only (dedicated-processor modelling)
    ]
    platform = Platform.heterogeneous(rates)

    print("rate matrix s_ij (rows = tasks, cols = processors):")
    for t, row in zip(system, rates):
        print(f"  {t.name:8s} {row}")
    q = platform.quality(system)
    print(f"quality Q(P_j) = sum_i s_ij C_i/T_i: "
          f"{[f'{float(x):.2f}' for x in q]}")
    print(f"dedicated-solver processor visit order (least capable first): "
          f"{[j + 1 for j in platform.processor_order(system)]}")
    print()

    for name in ("csp2+dc", "csp1"):
        solver = create_solver(name, system, platform)
        result = solver.solve(time_limit=30)
        print(f"{name}: {result.status.value} in {result.stats.elapsed * 1000:.1f} ms")
        if result.schedule is not None:
            assert validate(result.schedule).ok
            print(render_gantt(result.schedule))
        print()

    # sanity: the same system is hopeless on two identical unit-speed cores
    ident = create_solver("csp2+dc", system, Platform.identical(2)).solve(time_limit=30)
    print(f"same tasks on 2 identical unit-speed cores: {ident.status.value} "
          "(the filter's C > D makes it impossible)")


if __name__ == "__main__":
    main()
