#!/usr/bin/env python
"""Arbitrary-deadline systems via cloning (paper Section VI-B).

Scenario: a sensor-fusion pipeline stage that may lag one full period
behind — its relative deadline exceeds its period (``D > T``), so two
consecutive jobs can be live simultaneously and may even need to run *in
parallel on different processors*.  The CSP encodings cannot express two
live instances of one task, so the system is rewritten with ``k = ceil(D/T)``
clones per task; this example shows the transform and the resulting
parallel execution explicitly.

Run:  python examples/arbitrary_deadlines.py
"""

from repro import TaskSystem, clone_for_arbitrary_deadlines, render_gantt, solve


def main() -> None:
    system = TaskSystem.from_tuples(
        [
            (0, 4, 4, 2),  # fusion: D=4 = 2*T -> 2 clones; U = 4/2 = 2 alone!
            (0, 1, 3, 3),  # telemetry
        ],
        names=["fusion", "telemetry"],
    )
    # fusion alone consumes two full processors (C = D means each clone
    # occupies *every* slot of its window, and the windows tile all of
    # time), so the system needs a third processor for telemetry.
    m = 3
    print("original system (arbitrary deadlines):")
    for t in system:
        marker = "  <-- D > T" if not t.is_constrained else ""
        print(f"  {t}{marker}")
    print()

    cloned, cmap = clone_for_arbitrary_deadlines(system)
    print("cloned system (paper's O' = O + (i'-1)T, T' = kT):")
    for c in cloned:
        print(f"  {c}")
    print(f"clone map: {dict(enumerate(cmap.origin_of))} (clone -> original)")
    print(f"hyperperiod grows {system.hyperperiod} -> {cloned.hyperperiod}")
    print()

    # solve() does the cloning internally
    result = solve(system, m=m, solver="csp2+dc", time_limit=30)
    print(f"feasibility on m={m}: {result.status.value}")
    assert result.is_feasible

    # and indeed m=2 is not enough (U = 2 + 1/3 > 2):
    too_few = solve(system, m=2, solver="csp2+dc", time_limit=30)
    print(f"feasibility on m=2: {too_few.status.value} (U = {float(system.utilization):.2f} > 2)")

    print("\nschedule over the cloned tasks (validated against C1-C4):")
    print(render_gantt(result.schedule))

    print("\nsame schedule relabeled with the original task names:")
    orig = result.original_schedule
    print(render_gantt(orig))

    parallel_slots = [
        t
        for t in range(orig.horizon)
        if orig.entry(0, t) == 0 and orig.entry(1, t) == 0
    ]
    print(
        f"\nslots where BOTH processors run 'fusion' (two live jobs in "
        f"parallel): {parallel_slots}"
    )
    assert parallel_slots, "U=2 for fusion forces its clones to overlap"


if __name__ == "__main__":
    main()
