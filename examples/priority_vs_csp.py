#!/usr/bin/env python
"""Priority-driven scheduling vs exact CSP search (paper's future work).

Two demonstrations:

1. The paper's own running example is feasible (the CSP finds a schedule)
   yet *no* task-level fixed-priority order schedules it — not even global
   EDF does.  Exact search genuinely buys schedulability that priority
   policies cannot reach.

2. The discussion section conjectures that the winning (D-C) value
   ordering could seed a priority-assignment algorithm.  We measure it:
   across random CSP-feasible instances, how often does the (D-C) priority
   order — vs RM/DM/(T-C) and exhaustive search — yield a feasible global
   fixed-priority schedule?

Run:  python examples/priority_vs_csp.py
"""

from repro import Platform, create_solver
from repro.baselines import (
    exhaustive_priority_search,
    global_edf,
    global_fixed_priority,
    priority_order_from_heuristic,
)
from repro.generator import GeneratorConfig, generate_instances, running_example

HEURISTICS = ["dc", "tc", "dm", "rm"]


def demo_running_example() -> None:
    system = running_example()
    print("== the running example: CSP feasible, priority-unschedulable ==")
    csp = create_solver("csp2+dc", system, Platform.identical(2)).solve(time_limit=30)
    print(f"  CSP2+(D-C):          {csp.status.value}")

    edf = global_edf(system, 2)
    print(f"  global EDF:          {edf.verdict}"
          + (f" (task {edf.missed[0] + 1} misses at t={edf.missed[2]})"
             if edf.missed else ""))

    search = exhaustive_priority_search(system, 2)
    print(f"  all {search.orders_tried} fixed-priority orders: "
          f"{'some schedulable' if search.found else 'every order misses'}")
    assert csp.is_feasible and not search.found
    print()


def demo_dc_conjecture(n_instances: int = 30) -> None:
    print("== how often is each priority heuristic enough? ==")
    config = GeneratorConfig(n=5, m=2, tmax=6)
    instances = generate_instances(config, n_instances, seed=7)

    feasible = []
    for inst in instances:
        r = create_solver("csp2+dc", inst.system, Platform.identical(inst.m)).solve(
            time_limit=2.0
        )
        if r.is_feasible:
            feasible.append(inst)
    print(f"  {len(feasible)}/{n_instances} random instances are CSP-feasible")

    wins = {h: 0 for h in HEURISTICS}
    exhaustive_wins = 0
    for inst in feasible:
        for h in HEURISTICS:
            order = priority_order_from_heuristic(inst.system, h)
            sim = global_fixed_priority(inst.system, inst.m, order)
            if sim.schedulable:
                wins[h] += 1
        if exhaustive_priority_search(inst.system, inst.m, time_limit=5.0).found:
            exhaustive_wins += 1

    for h in HEURISTICS:
        print(f"  G-FP with {h.upper():3s} priority: {wins[h]:3d}/{len(feasible)}")
    print(f"  G-FP best over all n! orders: {exhaustive_wins:3d}/{len(feasible)}")
    print(f"  exact CSP (by construction): {len(feasible):3d}/{len(feasible)}")
    print()
    print("  -> (D-C) should lead the heuristics, and even exhaustive "
          "fixed-priority stays below the CSP — priority assignment is a "
          "heuristic, exact search is the ground truth.")


if __name__ == "__main__":
    demo_running_example()
    demo_dc_conjecture()
